//! liquid-check: a deterministic model-checking scheduler with
//! vector-clock race detection.
//!
//! # How it works
//!
//! A scenario runs its threads as real OS threads, but a controller
//! serializes them: at every *schedule point* the running thread parks
//! and the controller picks which parked thread continues. Schedule
//! points are exactly the operations whose order can matter:
//!
//! * acquisition and release of the [`lockdep`] `Mutex`/`RwLock`
//!   wrappers (one point per lock instance),
//! * every [`FailureInjector::tick`] fault site,
//! * [`chan`] send/receive hand-offs,
//! * [`Shared`] tracked-cell reads and writes,
//! * explicit [`yield_point`]s, spawning, and joining a live thread.
//!
//! Everything between two schedule points is thread-local by
//! construction (the `raw-thread` lint bans untracked concurrency
//! primitives outside this crate), so exploring all orderings of
//! schedule points explores all distinguishable interleavings.
//!
//! [`check`] drives a scenario through a DFS over those orderings with
//! two standard reductions: *sleep sets* (don't re-explore an order
//! that only commutes independent actions) and a *preemption bound*
//! (only consider schedules with at most N involuntary context
//! switches — empirically where almost all concurrency bugs live).
//! When the bounded space is still too large, it falls back to
//! seeded-random schedule sampling. Any failing run prints a
//! `CHECK_SCENARIO=<name> CHECK_SCHEDULE=<t0.t1...>` line; setting
//! those environment variables replays that exact interleaving.
//!
//! On top of the scheduler rides a happens-before race detector:
//! every thread, lock, and channel carries a [`VClock`], edges are
//! added at fork/join, release→acquire and send→receive, and a
//! [`Shared`] cell reports any read/write pair left unordered —
//! naming both source sites. Outside a model run every hook in this
//! module is a no-op, so production and chaos-harness behaviour is
//! unchanged.
//!
//! [`lockdep`]: crate::lockdep
//! [`FailureInjector::tick`]: crate::failure::FailureInjector::tick
//! [`VClock`]: crate::vclock::VClock

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::vclock::VClock;

// ---------------------------------------------------------------------------
// Controller state
// ---------------------------------------------------------------------------

/// What a parked thread is about to do. The controller uses this for
/// enabledness (can the action run now?) and the explorer for
/// independence (do two actions commute?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Act {
    /// First scheduling of a freshly spawned thread.
    Start,
    /// Explicit `yield_point()`.
    Yield,
    /// Acquire a lockdep lock; `write` covers mutexes and RwLock
    /// writers. `rank` is the lockdep rank name, carried for
    /// deterministic failure messages (ids are addresses and vary
    /// across runs).
    LockAcq {
        id: usize,
        write: bool,
        rank: &'static str,
    },
    /// Release a lockdep lock.
    LockRel {
        id: usize,
        write: bool,
        rank: &'static str,
    },
    /// Push into a [`chan`].
    ChanSend { id: usize },
    /// Pop from a [`chan`]; enabled only while non-empty.
    ChanRecv { id: usize },
    /// Wait for a live thread to exit.
    Join { child: usize },
    /// A `FailureInjector::tick` fault site.
    Tick { id: usize, site: &'static str },
    /// [`Shared`] cell access.
    Cell {
        id: usize,
        write: bool,
        name: &'static str,
    },
}

impl Act {
    /// Address-free description used in deadlock dumps and failure
    /// text, so replayed failures are byte-identical.
    fn describe(self) -> String {
        match self {
            Act::Start => "start".to_string(),
            Act::Yield => "yield".to_string(),
            Act::LockAcq { write, rank, .. } => {
                format!("acquire-{}({rank})", if write { "write" } else { "read" })
            }
            Act::LockRel { rank, .. } => format!("release({rank})"),
            Act::ChanSend { .. } => "chan-send".to_string(),
            Act::ChanRecv { .. } => "chan-recv".to_string(),
            Act::Join { child } => format!("join(t{child})"),
            Act::Tick { site, .. } => format!("tick({site})"),
            Act::Cell { write, name, .. } => {
                format!("cell-{}({name})", if write { "write" } else { "read" })
            }
        }
    }
}

impl Act {
    /// Do two actions commute? Sleep sets only prune orderings of
    /// independent pairs, so "dependent" is the safe default.
    fn independent(self, other: Act) -> bool {
        use Act::*;
        match (self, other) {
            // Purely thread-local markers commute with everything.
            (Start | Yield, _) | (_, Start | Yield) => true,
            // Join only observes an exit; it commutes with anything
            // except (conservatively) actions of the joined thread —
            // which can't be pending anyway once it is joinable.
            (Join { .. }, _) | (_, Join { .. }) => true,
            (
                LockAcq { id: a, .. } | LockRel { id: a, .. },
                LockAcq { id: b, .. } | LockRel { id: b, .. },
            ) => a != b,
            (ChanSend { id: a } | ChanRecv { id: a }, ChanSend { id: b } | ChanRecv { id: b }) => {
                a != b
            }
            (Tick { id: a, .. }, Tick { id: b, .. }) => a != b,
            (
                Cell {
                    id: a, write: wa, ..
                },
                Cell {
                    id: b, write: wb, ..
                },
            ) => a != b || (!wa && !wb),
            _ => true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Real thread exists but has not reached its first park yet.
    Starting,
    /// Parked at a schedule point, waiting to be chosen.
    Parked,
    /// Chosen; executing up to its next schedule point.
    Running,
    /// Body finished (or unwound during an abort).
    Exited,
}

struct ThreadState {
    name: String,
    status: Status,
    /// The action this thread is parked on (valid while `Parked`).
    pending: Act,
    /// This thread's happens-before clock.
    vc: VClock,
    /// Set when the thread panicked with a real failure (not an
    /// abort-drain unwind).
    failed: bool,
}

#[derive(Default)]
struct LockModel {
    writer: Option<usize>,
    readers: u32,
    /// Joined from each releaser; joined into each acquirer.
    vc: VClock,
}

#[derive(Default)]
struct ChanModel {
    /// One clock per in-flight message, FIFO.
    msg_vcs: VecDeque<VClock>,
}

/// Last-access bookkeeping for one [`Shared`] cell.
struct CellModel {
    name: &'static str,
    last_write: Option<(usize, VClock, &'static Location<'static>)>,
    /// Latest read per thread since the last ordered write.
    reads: Vec<(usize, VClock, &'static Location<'static>)>,
}

struct CtrlState {
    threads: Vec<ThreadState>,
    locks: HashMap<usize, LockModel>,
    chans: HashMap<usize, ChanModel>,
    cells: HashMap<usize, CellModel>,
    /// Decisions taken so far this run (the schedule string).
    schedule: Vec<usize>,
    /// First failure observed this run.
    failure: Option<String>,
    /// Set to drain the run: every parked thread wakes and unwinds.
    abort: bool,
}

impl CtrlState {
    fn enabled(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        if t.status != Status::Parked {
            return false;
        }
        match t.pending {
            Act::LockAcq { id, write, .. } => {
                let l = self.locks.get(&id);
                match l {
                    None => true,
                    Some(l) => {
                        if write {
                            l.writer.is_none() && l.readers == 0
                        } else {
                            l.writer.is_none()
                        }
                    }
                }
            }
            Act::ChanRecv { id } => self.chans.get(&id).is_some_and(|c| !c.msg_vcs.is_empty()),
            Act::Join { child } => self.threads[child].status == Status::Exited,
            _ => true,
        }
    }

    fn enabled_tids(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.enabled(t))
            .collect()
    }

    /// Model-level effects of letting `tid` take its pending action.
    /// Called by the controller at decision time, before waking the
    /// thread.
    fn commit(&mut self, tid: usize) {
        let act = self.threads[tid].pending;
        match act {
            Act::Start | Act::Yield => {}
            Act::LockAcq { id, write, .. } => {
                let l = self.locks.entry(id).or_default();
                if write {
                    l.writer = Some(tid);
                } else {
                    l.readers += 1;
                }
                let lvc = l.vc.clone();
                self.threads[tid].vc.join(&lvc);
            }
            Act::LockRel { id, write, .. } => {
                if let Some(l) = self.locks.get_mut(&id) {
                    if write {
                        l.writer = None;
                    } else {
                        l.readers = l.readers.saturating_sub(1);
                    }
                    l.vc.join(&self.threads[tid].vc);
                }
            }
            Act::ChanSend { id } => {
                let vc = self.threads[tid].vc.clone();
                self.chans.entry(id).or_default().msg_vcs.push_back(vc);
            }
            Act::ChanRecv { id } => {
                if let Some(vc) = self.chans.get_mut(&id).and_then(|c| c.msg_vcs.pop_front()) {
                    self.threads[tid].vc.join(&vc);
                }
            }
            Act::Join { child } => {
                let cvc = self.threads[child].vc.clone();
                self.threads[tid].vc.join(&cvc);
            }
            Act::Tick { .. } => {}
            Act::Cell { .. } => {
                // Race check happened when the access parked; nothing
                // model-global changes.
            }
        }
        self.threads[tid].vc.tick(tid);
        self.schedule.push(tid);
        self.threads[tid].status = Status::Running;
    }

    fn record_failure(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }
}

struct Ctrl {
    m: StdMutex<CtrlState>,
    cv: Condvar,
}

impl Ctrl {
    fn new() -> Ctrl {
        Ctrl {
            m: StdMutex::new(CtrlState {
                threads: Vec::new(),
                locks: HashMap::new(),
                chans: HashMap::new(),
                cells: HashMap::new(),
                schedule: Vec::new(),
                failure: None,
                abort: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, CtrlState> {
        self.m.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Marker payload used to unwind virtual threads when a run aborts;
/// the thread wrappers recognise and swallow it.
struct RunAborted;

thread_local! {
    /// `(controller, my virtual tid)` — present only on threads spawned
    /// into a model run.
    static CTX: RefCell<Option<(Arc<Ctrl>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Ctrl>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the calling thread is a virtual thread inside a model
/// run. Instrumentation hooks bail out immediately when this is false.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Parks the calling virtual thread at a schedule point announcing
/// `act`, and returns once the controller chooses it. Panics with the
/// abort marker if the run is being drained.
fn schedule_point(act: Act) {
    let Some((ctrl, tid)) = ctx() else { return };
    if std::thread::panicking() {
        // Already unwinding (abort drain or a real failure): taking
        // more schedule points would double-panic.
        return;
    }
    let mut st = ctrl.lock();
    if st.abort {
        drop(st);
        std::panic::panic_any(RunAborted);
    }
    st.threads[tid].pending = act;
    st.threads[tid].status = Status::Parked;
    ctrl.cv.notify_all();
    while st.threads[tid].status == Status::Parked && !st.abort {
        st = ctrl.cv.wait(st).unwrap_or_else(|p| p.into_inner());
    }
    if st.threads[tid].status != Status::Running {
        drop(st);
        std::panic::panic_any(RunAborted);
    }
}

// ---------------------------------------------------------------------------
// Instrumentation hooks (lockdep, failure injector)
// ---------------------------------------------------------------------------

/// Lock flavour, from the model's point of view: writers exclude
/// everyone, readers exclude only writers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex::lock` or `RwLock::write`.
    Exclusive,
    /// `RwLock::read`.
    Shared,
}

/// RAII token returned by [`lock_acquired`]; dropping it is the
/// model-level release point. In lockdep guards it must be declared
/// *after* the real `parking_lot` guard, so the real unlock
/// happens-before the model release commits — which is what lets the
/// controller grant the lock to another thread without that thread
/// blocking on the real lock.
pub struct LockToken {
    id: usize,
    write: bool,
    rank: &'static str,
    armed: bool,
}

impl Drop for LockToken {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let Some((ctrl, tid)) = ctx() else { return };
        if std::thread::panicking() {
            // Unwinding (abort drain): release the model lock without
            // parking so other drained threads don't see it held.
            let mut st = ctrl.lock();
            let tvc = st.threads[tid].vc.clone();
            if let Some(l) = st.locks.get_mut(&self.id) {
                if self.write {
                    l.writer = None;
                } else {
                    l.readers = l.readers.saturating_sub(1);
                }
                l.vc.join(&tvc);
            }
            ctrl.cv.notify_all();
            return;
        }
        schedule_point(Act::LockRel {
            id: self.id,
            write: self.write,
            rank: self.rank,
        });
    }
}

/// Called by the lockdep wrappers immediately *before* taking the real
/// lock. Blocks until the model grants the acquisition (the model lock
/// is free), which guarantees the subsequent real acquisition cannot
/// block. Outside a model run this is free.
pub fn lock_acquired(id: usize, kind: LockKind, rank: &'static str) -> LockToken {
    let write = kind == LockKind::Exclusive;
    if !in_model() {
        return LockToken {
            id,
            write,
            rank,
            armed: false,
        };
    }
    schedule_point(Act::LockAcq { id, write, rank });
    LockToken {
        id,
        write,
        rank,
        armed: true,
    }
}

/// Called by [`FailureInjector::tick`] before evaluating the site: the
/// order fault sites fire in is exactly the order the injector's
/// internal counters advance, so each one is a schedule point.
///
/// [`FailureInjector::tick`]: crate::failure::FailureInjector::tick
pub fn tick_point(injector_id: usize, site: &'static str) {
    if !in_model() {
        return;
    }
    schedule_point(Act::Tick {
        id: injector_id,
        site,
    });
}

// ---------------------------------------------------------------------------
// Virtual threads
// ---------------------------------------------------------------------------

fn register_thread(ctrl: &Arc<Ctrl>, name: String, parent: Option<usize>) -> usize {
    let mut st = ctrl.lock();
    let tid = st.threads.len();
    let vc = match parent {
        Some(p) => st.threads[p].vc.fork(tid),
        None => {
            let mut v = VClock::new();
            v.tick(tid);
            v
        }
    };
    if let Some(p) = parent {
        // The fork itself is an event on the parent.
        st.threads[p].vc.tick(p);
    }
    st.threads.push(ThreadState {
        name,
        status: Status::Starting,
        pending: Act::Start,
        vc,
        failed: false,
    });
    ctrl.cv.notify_all();
    tid
}

/// Runs `f` as virtual thread `tid`: parks for its first scheduling,
/// then executes, handling exit and panic protocol.
fn thread_main<T>(ctrl: Arc<Ctrl>, tid: usize, f: impl FnOnce() -> T) -> Option<T> {
    CTX.with(|c| *c.borrow_mut() = Some((ctrl.clone(), tid)));
    let parked = catch_unwind(AssertUnwindSafe(|| schedule_point(Act::Start)));
    let result = match parked {
        Ok(()) => catch_unwind(AssertUnwindSafe(f)),
        Err(p) => Err(p),
    };
    CTX.with(|c| *c.borrow_mut() = None);
    let mut st = ctrl.lock();
    let out = match result {
        Ok(v) => Some(v),
        Err(payload) => {
            if payload.downcast_ref::<RunAborted>().is_none() && !st.abort {
                let msg = panic_message(&payload);
                let name = st.threads[tid].name.clone();
                st.threads[tid].failed = true;
                st.record_failure(format!("thread '{name}' panicked: {msg}"));
            }
            None
        }
    };
    st.threads[tid].status = Status::Exited;
    ctrl.cv.notify_all();
    out
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Handle to a virtual (or, outside a model run, plain OS) thread.
pub struct JoinHandle<T> {
    tid: Option<usize>,
    inner: std::thread::JoinHandle<Option<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread and returns its result. A panic on the
    /// child propagates to the joiner, matching
    /// `handle.join().unwrap_or_else(|e| resume_unwind(e))` on std.
    pub fn join(self) -> T {
        if let Some(child) = self.tid {
            join_point(child);
        }
        match self.inner.join() {
            Ok(Some(v)) => v,
            // Child unwound during an abort drain: keep draining.
            Ok(None) => std::panic::panic_any(RunAborted),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// The thread's name, mirroring `std::thread::JoinHandle`.
    pub fn thread_name(&self) -> Option<&str> {
        self.inner.thread().name()
    }
}

/// Parks on `Join(child)` if the child is still live; if it already
/// exited this is just a clock join, not a schedule point (joining a
/// finished thread commutes with everything).
fn join_point(child: usize) {
    let Some((ctrl, tid)) = ctx() else { return };
    let already_exited = {
        let mut st = ctrl.lock();
        if st.threads[child].status == Status::Exited {
            let cvc = st.threads[child].vc.clone();
            st.threads[tid].vc.join(&cvc);
            st.threads[tid].vc.tick(tid);
            true
        } else {
            false
        }
    };
    if !already_exited {
        schedule_point(Act::Join { child });
    }
}

/// Spawns a thread. Inside a model run this is a virtual thread under
/// the controller; outside it is a plain OS thread. This (plus
/// [`scope`]) is the only spawn primitive the `raw-thread` lint
/// permits outside `crates/sim`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named("worker".to_string(), f)
}

/// [`spawn`] with a thread name used in schedules, race reports and
/// deadlock dumps.
pub fn spawn_named<F, T>(name: String, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        Some((ctrl, me)) => {
            let tid = register_thread(&ctrl, name.clone(), Some(me));
            let builder = std::thread::Builder::new().name(name);
            let inner = builder
                .spawn(move || thread_main(ctrl, tid, f))
                .unwrap_or_else(|e| {
                    // lint:allow(panic, reason=OS thread exhaustion inside a model run is unrecoverable test-harness failure)
                    panic!("liquid-check: failed to spawn virtual thread: {e}")
                });
            JoinHandle {
                tid: Some(tid),
                inner,
            }
        }
        None => {
            let builder = std::thread::Builder::new().name(name);
            let inner = builder.spawn(move || Some(f())).unwrap_or_else(|e| {
                // lint:allow(panic, reason=OS thread exhaustion is unrecoverable; mirrors std::thread::spawn)
                panic!("sim::sched::spawn: failed to spawn thread: {e}")
            });
            JoinHandle { tid: None, inner }
        }
    }
}

/// Explicit schedule point: inside a model run the controller may
/// switch threads here; outside it is free. Sprinkle through long
/// lock-free sections you want the explorer to preempt.
pub fn yield_point() {
    if !in_model() {
        return;
    }
    schedule_point(Act::Yield);
}

// ---------------------------------------------------------------------------
// Scoped threads
// ---------------------------------------------------------------------------

/// Scope for borrowing spawns, wrapping `std::thread::scope` with
/// model-run integration.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    /// Virtual tids of children not yet explicitly joined; the scope
    /// exit model-joins them before the real implicit join.
    pending: RefCell<Vec<usize>>,
}

/// Handle returned by [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    tid: Option<usize>,
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; a virtual thread inside a model run.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match ctx() {
            Some((ctrl, me)) => {
                let tid = register_thread(&ctrl, format!("scoped-{}", me), Some(me));
                self.pending.borrow_mut().push(tid);
                let inner = self.inner.spawn(move || thread_main(ctrl, tid, f));
                ScopedJoinHandle {
                    tid: Some(tid),
                    inner,
                }
            }
            None => ScopedJoinHandle {
                tid: None,
                inner: self.inner.spawn(move || Some(f())),
            },
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the scoped thread; child panics propagate, as with
    /// [`JoinHandle::join`].
    pub fn join(self) -> T {
        if let Some(child) = self.tid {
            join_point(child);
        }
        match self.inner.join() {
            Ok(Some(v)) => v,
            Ok(None) => std::panic::panic_any(RunAborted),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// Scoped-thread entry point, replacing `std::thread::scope`. Inside a
/// model run, children the closure did not join are model-joined
/// before the real scope's implicit join — otherwise that implicit
/// join would block an OS thread on children the controller still
/// needs to schedule.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| {
        let scope = Scope {
            inner: s,
            pending: RefCell::new(Vec::new()),
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Model-join the stragglers even when the closure panicked —
        // otherwise the implicit std join below would block this
        // (still `Running`, from the controller's view) thread on
        // children the controller never gets to schedule. Skip only
        // when the run is already being drained: the abort drain
        // unwinds the children itself.
        let pending = scope.pending.take();
        let draining = result
            .as_ref()
            .err()
            .is_some_and(|p| p.downcast_ref::<RunAborted>().is_some())
            || ctx().is_some_and(|(ctrl, _)| ctrl.lock().abort);
        if !draining {
            for child in pending {
                join_point(child);
            }
        }
        match result {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

// ---------------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------------

struct ChanInner<T> {
    q: StdMutex<VecDeque<T>>,
    cv: Condvar,
    closed: AtomicBool,
}

/// Sending half of a [`chan`]. Clonable; sends are schedule points
/// carrying the sender's clock.
pub struct Sender<T> {
    inner: Arc<ChanInner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Receiving half of a [`chan`].
pub struct Receiver<T> {
    inner: Arc<ChanInner<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

fn chan_id<T>(inner: &Arc<ChanInner<T>>) -> usize {
    Arc::as_ptr(inner) as usize
}

impl<T> Sender<T> {
    /// Sends a value. Inside a model run the hand-off is a schedule
    /// point and the receiver inherits the sender's clock.
    pub fn send(&self, value: T) -> Result<(), SendError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(SendError);
        }
        if in_model() {
            schedule_point(Act::ChanSend {
                id: chan_id(&self.inner),
            });
        }
        let mut q = self.inner.q.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(value);
        drop(q);
        self.inner.cv.notify_all();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receives the next value. Inside a model run this parks as a
    /// schedule point that is enabled only while the channel is
    /// non-empty — an empty-channel receive with no live sender shows
    /// up as a model deadlock, not a hang.
    pub fn recv(&self) -> T {
        if in_model() {
            schedule_point(Act::ChanRecv {
                id: chan_id(&self.inner),
            });
            let mut q = self.inner.q.lock().unwrap_or_else(|p| p.into_inner());
            return q.pop_front().unwrap_or_else(|| {
                // lint:allow(panic, reason=the model grants ChanRecv only when non-empty; an empty pop is a scheduler bug)
                panic!("liquid-check: ChanRecv granted on an empty channel")
            });
        }
        let mut q = self.inner.q.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return v;
            }
            q = self.inner.cv.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking receive; never a schedule point on the empty path.
    pub fn try_recv(&self) -> Option<T> {
        let nonempty = {
            let q = self.inner.q.lock().unwrap_or_else(|p| p.into_inner());
            !q.is_empty()
        };
        if nonempty && in_model() {
            schedule_point(Act::ChanRecv {
                id: chan_id(&self.inner),
            });
        }
        let mut q = self.inner.q.lock().unwrap_or_else(|p| p.into_inner());
        q.pop_front()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
    }
}

/// Creates an unbounded channel whose hand-offs are schedule points
/// and happens-before edges inside a model run.
pub fn chan<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(ChanInner {
        q: StdMutex::new(VecDeque::new()),
        cv: Condvar::new(),
        closed: AtomicBool::new(false),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

// ---------------------------------------------------------------------------
// Shared<T>: the tracked cell
// ---------------------------------------------------------------------------

/// A tracked shared cell: every access is a schedule point, stamped
/// with the accessing thread's vector clock. Two accesses to the same
/// cell, at least one a write, left unordered by happens-before are a
/// data race; the model run fails immediately naming both source
/// sites.
///
/// Outside a model run the cell is a plain mutex-protected value with
/// no tracking.
pub struct Shared<T> {
    name: &'static str,
    value: parking_lot::Mutex<T>,
}

impl<T> Shared<T> {
    /// Wraps `value`; `name` labels the cell in race reports.
    pub fn new(name: &'static str, value: T) -> Shared<T> {
        Shared {
            name,
            value: parking_lot::Mutex::new(value),
        }
    }

    fn id(&self) -> usize {
        &self.value as *const parking_lot::Mutex<T> as usize
    }

    #[track_caller]
    fn access(&self, write: bool) {
        let Some((ctrl, tid)) = ctx() else { return };
        let site = Location::caller();
        schedule_point(Act::Cell {
            id: self.id(),
            write,
            name: self.name,
        });
        let mut st = ctrl.lock();
        let id = self.id();
        let vc = st.threads[tid].vc.clone();
        let cell = st.cells.entry(id).or_insert_with(|| CellModel {
            name: self.name,
            last_write: None,
            reads: Vec::new(),
        });
        let mut race: Option<String> = None;
        if write {
            if let Some((wtid, wvc, wsite)) = &cell.last_write {
                if *wtid != tid && !wvc.le(&vc) {
                    race = Some(race_report(
                        cell.name, "write", wsite, *wtid, "write", site, tid,
                    ));
                }
            }
            if race.is_none() {
                for (rtid, rvc, rsite) in &cell.reads {
                    if *rtid != tid && !rvc.le(&vc) {
                        race = Some(race_report(
                            cell.name, "read", rsite, *rtid, "write", site, tid,
                        ));
                        break;
                    }
                }
            }
            cell.last_write = Some((tid, vc, site));
            cell.reads.clear();
        } else {
            if let Some((wtid, wvc, wsite)) = &cell.last_write {
                if *wtid != tid && !wvc.le(&vc) {
                    race = Some(race_report(
                        cell.name, "write", wsite, *wtid, "read", site, tid,
                    ));
                }
            }
            cell.reads.retain(|(rtid, _, _)| *rtid != tid);
            cell.reads.push((tid, vc, site));
        }
        if let Some(msg) = race {
            st.record_failure(msg);
            ctrl.cv.notify_all();
            drop(st);
            std::panic::panic_any(RunAborted);
        }
    }

    /// Writes through a closure; counts as a write access.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.access(true);
        f(&mut self.value.lock())
    }

    /// Reads through a closure; counts as a read access.
    #[track_caller]
    pub fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.access(false);
        f(&self.value.lock())
    }

    /// Replaces the value; a write access.
    #[track_caller]
    pub fn set(&self, value: T) {
        self.access(true);
        *self.value.lock() = value;
    }
}

impl<T: Clone> Shared<T> {
    /// Clones the value out; a read access.
    #[track_caller]
    pub fn get(&self) -> T {
        self.access(false);
        self.value.lock().clone()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("name", &self.name)
            .field("value", &*self.value.lock())
            .finish()
    }
}

fn race_report(
    cell: &str,
    prev_kind: &str,
    prev_site: &'static Location<'static>,
    prev_tid: usize,
    cur_kind: &str,
    cur_site: &'static Location<'static>,
    cur_tid: usize,
) -> String {
    format!(
        "data race on cell '{cell}': {prev_kind} at {prev_site} (thread t{prev_tid}) is \
         concurrent with {cur_kind} at {cur_site} (thread t{cur_tid}) — no happens-before \
         edge orders them"
    )
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

/// Exploration configuration for [`check`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of involuntary context switches per schedule
    /// (CHESS-style). `None` explores the full space.
    pub preemption_bound: Option<usize>,
    /// DFS run budget; past it the space is declared too large and
    /// sampling takes over.
    pub max_interleavings: usize,
    /// Per-run step ceiling; exceeding it is reported as a livelock.
    pub max_steps: usize,
    /// Seeded-random schedules to run when DFS doesn't finish.
    pub samples: usize,
    /// Seed for the sampling fallback.
    pub seed: u64,
    /// Replay exactly this schedule (then first-enabled) once instead
    /// of exploring. The env vars `CHECK_SCENARIO`/`CHECK_SCHEDULE`
    /// set this too.
    pub replay: Option<Vec<usize>>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: None,
            max_interleavings: 50_000,
            max_steps: 20_000,
            samples: 0,
            seed: 0,
            replay: None,
        }
    }
}

impl Config {
    /// Preemption-bounded config with a sampling fallback — the shape
    /// used for configurations too large to exhaust.
    pub fn bounded(bound: usize, samples: usize, seed: u64) -> Config {
        Config {
            preemption_bound: Some(bound),
            samples,
            seed,
            ..Config::default()
        }
    }
}

/// What [`check`] found.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scenario name as passed to [`check`].
    pub scenario: String,
    /// Completed (non-pruned) interleavings the DFS executed — with
    /// sleep sets, one per Mazurkiewicz trace.
    pub interleavings: usize,
    /// Runs cut short by sleep-set pruning (redundant orderings).
    pub pruned: usize,
    /// Whether the DFS exhausted the (preemption-bounded) space.
    pub complete: bool,
    /// Random schedules run by the sampling fallback.
    pub sampled: usize,
    /// True when this was a single-schedule replay, not exploration.
    pub replayed: bool,
}

struct RunResult {
    failure: Option<String>,
    schedule: Vec<usize>,
    names: Vec<String>,
    pruned: bool,
}

/// Executes the scenario once under the controller, consulting
/// `decide` at every decision point. `decide(state, enabled)` returns
/// the tid to run, or `None` to abandon the run (sleep-set prune).
fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    max_steps: usize,
    decide: &mut dyn FnMut(&CtrlState, &[usize]) -> Option<usize>,
) -> RunResult {
    let ctrl = Arc::new(Ctrl::new());
    let root = register_thread(&ctrl, "main".to_string(), None);
    let handle = {
        let ctrl = Arc::clone(&ctrl);
        let f = Arc::clone(f);
        std::thread::Builder::new()
            .name("model-main".to_string())
            .spawn(move || thread_main(ctrl, root, move || f()))
            .unwrap_or_else(|e| {
                // lint:allow(panic, reason=OS thread exhaustion makes the whole model run unrecoverable)
                panic!("liquid-check: failed to spawn root thread: {e}")
            })
    };
    let mut steps = 0usize;
    let mut pruned = false;
    {
        let mut st = ctrl.lock();
        loop {
            while st
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::Starting | Status::Running))
            {
                st = ctrl.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            if st.abort {
                // Drain: parked threads wake on abort and unwind.
                ctrl.cv.notify_all();
                while st.threads.iter().any(|t| t.status != Status::Exited) {
                    st = ctrl.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                    ctrl.cv.notify_all();
                }
                break;
            }
            if st.threads.iter().all(|t| t.status == Status::Exited) {
                break;
            }
            let enabled = st.enabled_tids();
            if enabled.is_empty() {
                let mut dump = String::from("deadlock — no thread can make progress:");
                for (i, t) in st.threads.iter().enumerate() {
                    if t.status != Status::Exited {
                        dump.push_str(&format!(
                            "\n    t{i} '{}' blocked on {}",
                            t.name,
                            t.pending.describe()
                        ));
                    }
                }
                st.record_failure(dump);
                ctrl.cv.notify_all();
                continue;
            }
            if steps >= max_steps {
                st.record_failure(format!(
                    "livelock — run exceeded {max_steps} schedule points without terminating"
                ));
                ctrl.cv.notify_all();
                continue;
            }
            match decide(&st, &enabled) {
                Some(tid) => {
                    debug_assert!(
                        st.enabled(tid),
                        "liquid-check: scheduler chose a disabled thread t{tid}"
                    );
                    st.commit(tid);
                    steps += 1;
                    ctrl.cv.notify_all();
                }
                None => {
                    pruned = true;
                    st.abort = true;
                    ctrl.cv.notify_all();
                    continue;
                }
            }
        }
    }
    let _ = handle.join();
    let st = ctrl.lock();
    RunResult {
        failure: if pruned { None } else { st.failure.clone() },
        schedule: st.schedule.clone(),
        names: st.threads.iter().map(|t| t.name.clone()).collect(),
        pruned,
    }
}

/// One DFS node: the state of exploration at a given depth.
struct Node {
    enabled: Vec<usize>,
    /// Pending action per enabled thread at this node.
    acts: Vec<(usize, Act)>,
    /// Sleep set; grows with each explored sibling choice.
    sleep: std::collections::BTreeSet<usize>,
    chosen: usize,
    prev: Option<usize>,
    prev_enabled: bool,
    /// Preemptions along the path up to (not including) this choice.
    pre_count: usize,
}

fn candidates(node: &Node, bound: Option<usize>) -> Vec<usize> {
    let mut c: Vec<usize> = node
        .enabled
        .iter()
        .copied()
        .filter(|t| !node.sleep.contains(t))
        .collect();
    if let (Some(b), Some(p)) = (bound, node.prev) {
        if node.prev_enabled && node.pre_count >= b {
            // Budget spent: the previously-running thread must keep
            // going while it can (switching away would preempt it).
            c.retain(|&t| t == p);
        }
    }
    c
}

fn join_schedule(schedule: &[usize]) -> String {
    let mut s = String::new();
    for (i, t) in schedule.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        s.push_str(&t.to_string());
    }
    s
}

/// Parses a `CHECK_SCHEDULE` string (`"0.1.0.2"`) back into tids.
pub fn parse_schedule(s: &str) -> Vec<usize> {
    s.split('.')
        .filter(|p| !p.is_empty())
        .filter_map(|p| p.trim().parse().ok())
        .collect()
}

/// Pulls the `CHECK_SCENARIO=<name> CHECK_SCHEDULE=<trace>` repro pair
/// out of a failure message, for programmatic replay.
pub fn extract_schedule(msg: &str) -> Option<(String, Vec<usize>)> {
    let at = msg.find("CHECK_SCENARIO=")?;
    let rest = &msg[at + "CHECK_SCENARIO=".len()..];
    let name_end = rest.find(char::is_whitespace)?;
    let name = rest[..name_end].to_string();
    let at = rest.find("CHECK_SCHEDULE=")?;
    let rest = &rest[at + "CHECK_SCHEDULE=".len()..];
    let sched_end = rest.find(char::is_whitespace).unwrap_or(rest.len());
    Some((name, parse_schedule(&rest[..sched_end])))
}

fn format_failure(name: &str, failure: &str, schedule: &[usize], names: &[String]) -> String {
    let mut threads = String::new();
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            threads.push(' ');
        }
        threads.push_str(&format!("t{i}={n}"));
    }
    format!(
        "liquid-check[{name}] failed: {failure}\n  \
         replay: CHECK_SCENARIO={name} CHECK_SCHEDULE={}\n  \
         threads: {threads}",
        join_schedule(schedule)
    )
}

fn artifact_path(name: &str) -> std::path::PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    std::path::Path::new(&target)
        .join("model")
        .join(format!("{safe}.schedule"))
}

fn write_artifact(name: &str, text: &str) {
    let path = artifact_path(name);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, text);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fail_run(name: &str, failure: &str, schedule: &[usize], names: &[String]) -> ! {
    let text = format_failure(name, failure, schedule, names);
    write_artifact(name, &text);
    // lint:allow(panic, reason=a model-checking failure must abort the test with the repro schedule)
    panic!("{text}");
}

/// Replays `sched` exactly, then continues first-enabled. Panics with
/// the (byte-identical) formatted failure if the run fails.
fn replay_once(name: &str, f: &Arc<dyn Fn() + Send + Sync>, cfg: &Config, sched: &[usize]) {
    let mut depth = 0usize;
    let mut diverged: Option<String> = None;
    let res = run_once(f, cfg.max_steps, &mut |_st, enabled| {
        let k = depth;
        depth += 1;
        if let Some(&t) = sched.get(k) {
            if enabled.contains(&t) {
                Some(t)
            } else {
                diverged = Some(format!(
                    "replay diverged at step {k}: schedule says t{t} but enabled set is {enabled:?}"
                ));
                None
            }
        } else {
            enabled.first().copied()
        }
    });
    if let Some(d) = diverged {
        // lint:allow(panic, reason=replay divergence means the scenario is nondeterministic; abort with diagnostics)
        panic!("liquid-check[{name}]: {d}");
    }
    if let Some(fail) = res.failure {
        fail_run(name, &fail, &res.schedule, &res.names);
    }
}

/// Model-checks `scenario`: explores its interleavings by DFS with
/// sleep sets and an optional preemption bound, falling back to
/// seeded-random sampling past the DFS budget. Panics on the first
/// failing interleaving with a `CHECK_SCENARIO=.. CHECK_SCHEDULE=..`
/// repro line (also written under `target/model/`); setting those env
/// vars — or [`Config::replay`] — replays that schedule instead of
/// exploring.
pub fn check(name: &str, cfg: Config, scenario: impl Fn() + Send + Sync + 'static) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let env_replay = std::env::var("CHECK_SCENARIO")
        .ok()
        .filter(|s| s == name)
        .and_then(|_| std::env::var("CHECK_SCHEDULE").ok())
        .map(|s| parse_schedule(&s));
    if let Some(sched) = env_replay.or_else(|| cfg.replay.clone()) {
        replay_once(name, &f, &cfg, &sched);
        return Report {
            scenario: name.to_string(),
            interleavings: 1,
            pruned: 0,
            complete: false,
            sampled: 0,
            replayed: true,
        };
    }

    let bound = cfg.preemption_bound;
    let mut stack: Vec<Node> = Vec::new();
    let mut interleavings = 0usize;
    let mut pruned_runs = 0usize;
    let mut complete = false;
    loop {
        let mut depth = 0usize;
        let mut prune_run = false;
        let res = {
            let stack_ref = &mut stack;
            let prune_ref = &mut prune_run;
            run_once(&f, cfg.max_steps, &mut |st, enabled| {
                let k = depth;
                depth += 1;
                if k < stack_ref.len() {
                    debug_assert_eq!(
                        stack_ref[k].enabled, enabled,
                        "liquid-check[{name}]: nondeterministic scenario — enabled sets \
                         diverged while replaying the DFS prefix at step {k}"
                    );
                    return Some(stack_ref[k].chosen);
                }
                let acts: Vec<(usize, Act)> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status == Status::Parked)
                    .map(|(i, t)| (i, t.pending))
                    .collect();
                let (prev, prev_enabled, pre_count, sleep) = if k == 0 {
                    (None, false, 0, std::collections::BTreeSet::new())
                } else {
                    let parent = &stack_ref[k - 1];
                    let prev = Some(parent.chosen);
                    let prev_enabled = enabled.contains(&parent.chosen);
                    let stepped = parent.pre_count
                        + usize::from(
                            parent.prev_enabled && parent.prev.is_some_and(|p| p != parent.chosen),
                        );
                    let chosen_act = parent
                        .acts
                        .iter()
                        .find(|(t, _)| *t == parent.chosen)
                        .map(|(_, a)| *a);
                    // Sleep sets assume the pruned order was explored
                    // elsewhere — with a preemption bound that "elsewhere"
                    // may itself be out of budget, so inherit sleep sets
                    // only in unbounded mode (bounded runs keep the
                    // per-node done-set behaviour of `sleep`).
                    let sleep = if bound.is_some() {
                        std::collections::BTreeSet::new()
                    } else {
                        parent
                            .sleep
                            .iter()
                            .copied()
                            .filter(|s| {
                                match (chosen_act, parent.acts.iter().find(|(t, _)| t == s)) {
                                    (Some(ca), Some((_, sa))) => sa.independent(ca),
                                    _ => false,
                                }
                            })
                            .collect()
                    };
                    (prev, prev_enabled, stepped, sleep)
                };
                let mut node = Node {
                    enabled: enabled.to_vec(),
                    acts,
                    sleep,
                    chosen: 0,
                    prev,
                    prev_enabled,
                    pre_count,
                };
                let cands = candidates(&node, bound);
                match cands.first() {
                    Some(&c) => {
                        node.chosen = c;
                        stack_ref.push(node);
                        Some(c)
                    }
                    None => {
                        *prune_ref = true;
                        None
                    }
                }
            })
        };
        if let Some(fail) = res.failure {
            fail_run(name, &fail, &res.schedule, &res.names);
        }
        if prune_run || res.pruned {
            pruned_runs += 1;
        } else {
            interleavings += 1;
        }
        // Backtrack: deepest node with an untried, unslept candidate.
        loop {
            match stack.last_mut() {
                None => {
                    complete = true;
                    break;
                }
                Some(top) => {
                    top.sleep.insert(top.chosen);
                    let cands = candidates(top, bound);
                    if let Some(&c) = cands.first() {
                        top.chosen = c;
                        break;
                    }
                    stack.pop();
                }
            }
        }
        if complete || interleavings + pruned_runs >= cfg.max_interleavings {
            break;
        }
    }

    let mut sampled = 0usize;
    if !complete && cfg.samples > 0 {
        for i in 0..cfg.samples {
            let mut state = cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1);
            let res = run_once(&f, cfg.max_steps, &mut |_st, enabled| {
                let r = splitmix64(&mut state);
                Some(enabled[(r % enabled.len() as u64) as usize])
            });
            if let Some(fail) = res.failure {
                fail_run(name, &fail, &res.schedule, &res.names);
            }
            sampled += 1;
        }
    }

    Report {
        scenario: name.to_string(),
        interleavings,
        pruned: pruned_runs,
        complete,
        sampled,
        replayed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockdep;
    use std::panic::catch_unwind;
    use std::sync::atomic::AtomicU64;

    fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string>".to_string())
    }

    #[test]
    fn single_thread_scenario_is_one_interleaving() {
        let report = check("single", Config::default(), || {
            yield_point();
            yield_point();
        });
        assert!(report.complete);
        assert_eq!(report.interleavings, 1);
        assert_eq!(report.pruned, 0);
    }

    #[test]
    fn same_lock_two_threads_explores_both_orders() {
        let report = check("two-producers-one-lock", Config::default(), || {
            let m = Arc::new(lockdep::Mutex::new("job.metrics", 0u64));
            let a = Arc::clone(&m);
            let b = Arc::clone(&m);
            let ha = spawn_named("a".into(), move || *a.lock() += 1);
            let hb = spawn_named("b".into(), move || *b.lock() += 1);
            ha.join();
            hb.join();
            assert_eq!(*m.lock(), 2);
        });
        assert!(report.complete);
        // Two dependent critical sections: exactly the two orders.
        assert_eq!(report.interleavings, 2, "report: {report:?}");
    }

    #[test]
    fn independent_locks_collapse_to_one_trace() {
        let report = check("independent-locks", Config::default(), || {
            let m1 = Arc::new(lockdep::Mutex::new("job.metrics", 0u64));
            let m2 = Arc::new(lockdep::Mutex::new("offsets.inner", 0u64));
            let h1 = spawn_named("a".into(), move || *m1.lock() += 1);
            let h2 = spawn_named("b".into(), move || *m2.lock() += 1);
            h1.join();
            h2.join();
        });
        assert!(report.complete);
        // All actions commute; sleep sets collapse the space.
        assert_eq!(report.interleavings, 1, "report: {report:?}");
    }

    #[test]
    fn channel_handoff_is_a_happens_before_edge() {
        let report = check("chan-hb", Config::default(), || {
            let cell = Arc::new(Shared::new("chan.hb.cell", 0u64));
            let (tx, rx) = chan::<()>();
            let w = Arc::clone(&cell);
            let producer = spawn_named("producer".into(), move || {
                w.set(42);
                tx.send(()).ok();
            });
            let r = Arc::clone(&cell);
            let consumer = spawn_named("consumer".into(), move || {
                rx.recv();
                assert_eq!(r.get(), 42);
            });
            producer.join();
            consumer.join();
        });
        assert!(report.complete);
        assert!(report.interleavings >= 1);
    }

    #[test]
    fn racy_cells_are_flagged_with_both_sites() {
        let err = catch_unwind(|| {
            check("racy-fixture", Config::default(), || {
                let c = Arc::new(Shared::new("racy.counter", 0u64));
                let a = Arc::clone(&c);
                let b = Arc::clone(&c);
                let ha = spawn_named("a".into(), move || a.with(|v| *v += 1));
                let hb = spawn_named("b".into(), move || b.with(|v| *v += 1));
                ha.join();
                hb.join();
            });
        })
        .expect_err("unsynchronized writes must be reported as a race");
        let msg = panic_text(err);
        assert!(
            msg.contains("data race on cell 'racy.counter'"),
            "msg: {msg}"
        );
        assert!(msg.contains("CHECK_SCHEDULE="), "msg: {msg}");
        // Both access sites are named, file:line:col.
        assert_eq!(msg.matches("sched.rs:").count(), 2, "msg: {msg}");
    }

    #[test]
    fn lock_protected_twin_is_race_free() {
        let report = check("lock-protected-twin", Config::default(), || {
            let c = Arc::new(Shared::new("clean.counter", 0u64));
            let m = Arc::new(lockdep::Mutex::new("job.metrics", ()));
            let (c1, m1) = (Arc::clone(&c), Arc::clone(&m));
            let (c2, m2) = (Arc::clone(&c), Arc::clone(&m));
            let h1 = spawn_named("a".into(), move || {
                let _g = m1.lock();
                c1.with(|v| *v += 1);
            });
            let h2 = spawn_named("b".into(), move || {
                let _g = m2.lock();
                c2.with(|v| *v += 1);
            });
            h1.join();
            h2.join();
            assert_eq!(c.get(), 2);
        });
        assert!(report.complete);
        assert_eq!(report.interleavings, 2, "report: {report:?}");
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let err = catch_unwind(|| {
            check("deadlock", Config::default(), || {
                let (tx, rx) = chan::<u8>();
                drop(tx);
                let h = spawn_named("consumer".into(), move || {
                    rx.recv();
                });
                h.join();
            });
        })
        .expect_err("an un-satisfiable recv must be reported as deadlock");
        let msg = panic_text(err);
        assert!(msg.contains("deadlock"), "msg: {msg}");
        assert!(msg.contains("chan-recv"), "msg: {msg}");
        assert!(msg.contains("join(t1)"), "msg: {msg}");
    }

    #[test]
    fn replay_reproduces_failure_byte_for_byte() {
        let scenario = || {
            let c = Arc::new(Shared::new("replay.cell", 0u64));
            let a = Arc::clone(&c);
            let b = Arc::clone(&c);
            let ha = spawn_named("a".into(), move || a.with(|v| *v += 1));
            let hb = spawn_named("b".into(), move || b.with(|v| *v += 1));
            ha.join();
            hb.join();
        };
        let first = panic_text(
            catch_unwind(|| check("replay-rt", Config::default(), scenario))
                .expect_err("exploration must fail"),
        );
        let (name, sched) = extract_schedule(&first).expect("repro line must parse");
        assert_eq!(name, "replay-rt");
        assert!(!sched.is_empty());
        let cfg = Config {
            replay: Some(sched),
            ..Config::default()
        };
        let second = panic_text(
            catch_unwind(|| check("replay-rt", cfg, scenario))
                .expect_err("replay must reproduce the failure"),
        );
        assert_eq!(
            first, second,
            "replay must reproduce the failure byte-for-byte"
        );
    }

    #[test]
    fn preemption_bound_zero_still_finds_both_orders() {
        let report = check(
            "bounded-two-producers",
            Config {
                preemption_bound: Some(0),
                ..Config::default()
            },
            || {
                let m = Arc::new(lockdep::Mutex::new("job.metrics", 0u64));
                let a = Arc::clone(&m);
                let b = Arc::clone(&m);
                let ha = spawn_named("a".into(), move || *a.lock() += 1);
                let hb = spawn_named("b".into(), move || *b.lock() += 1);
                ha.join();
                hb.join();
            },
        );
        assert!(report.complete);
        // Switches at blocking points are free, so both lock orders
        // are reachable even with zero preemptions.
        assert!(report.interleavings >= 2, "report: {report:?}");
    }

    #[test]
    fn scope_threads_are_model_joined() {
        let report = check("scoped", Config::default(), || {
            let total = AtomicU64::new(0);
            scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(total.load(Ordering::SeqCst), 2);
        });
        assert!(report.complete);
        assert!(report.interleavings >= 1);
    }

    #[test]
    fn tick_sites_are_schedule_points() {
        let report = check("tick-points", Config::default(), || {
            let inj = crate::failure::FailureInjector::disabled();
            let i1 = inj.clone();
            let i2 = inj.clone();
            let h1 = spawn_named("a".into(), move || {
                i1.tick("log.append");
            });
            let h2 = spawn_named("b".into(), move || {
                i2.tick("log.append");
            });
            h1.join();
            h2.join();
        });
        assert!(report.complete);
        // Same injector: the two ticks are dependent, both orders run.
        assert_eq!(report.interleavings, 2, "report: {report:?}");
    }

    #[test]
    fn outside_a_model_run_primitives_are_passthrough() {
        assert!(!in_model());
        yield_point();
        let (tx, rx) = chan::<u32>();
        tx.send(7).ok();
        assert_eq!(rx.try_recv(), Some(7));
        let cell = Shared::new("passthrough", 1u64);
        cell.set(2);
        assert_eq!(cell.get(), 2);
        let h = spawn(|| 40 + 2);
        assert_eq!(h.join(), 42);
        let sum = scope(|s| {
            let a = s.spawn(|| 20);
            let b = s.spawn(|| 22);
            a.join() + b.join()
        });
        assert_eq!(sum, 42);
    }

    #[test]
    fn schedule_string_round_trips() {
        assert_eq!(parse_schedule("0.1.2.1"), vec![0, 1, 2, 1]);
        assert_eq!(parse_schedule(""), Vec::<usize>::new());
        let msg = "liquid-check[x] failed: boom\n  replay: CHECK_SCENARIO=x CHECK_SCHEDULE=0.1.0\n  threads: t0=main";
        let (name, sched) = extract_schedule(msg).expect("parse");
        assert_eq!(name, "x");
        assert_eq!(sched, vec![0, 1, 0]);
    }
}
