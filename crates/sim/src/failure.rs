//! Failure injection.
//!
//! Liquid's availability story (§4.3) is exercised by killing brokers and
//! processing tasks at controlled points. Two mechanisms are provided:
//! a deterministic schedule (fail exactly at operation N) and a seeded
//! probabilistic injector, both usable from tests and experiments.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::Rng;

use crate::rng::seeded;

/// Every named fault-injection site in the workspace.
///
/// A *site* is one decision point where a component consults its
/// injector before a fallible operation. Sites are named so that (a)
/// chaos-run logs say *which* operation an injected fault hit, and (b)
/// the static analyzer (`liquid-lint`, lint `fault-site`) can check
/// the call sites and this registry against each other: a tick string
/// missing here — or an entry here with no call site — is a build
/// failure, so the registry cannot drift from the code.
pub const SITES: &[&str] = &[
    // log crate
    "log.append",
    "log.append-batch",
    "log.roll",
    "log.compact",
    "log.segment-drop",
    "log.cache-evict",
    // kv crate (task state stores)
    "kv.wal-append",
    "kv.flush",
    "kv.sst-write",
    "kv.compact",
    "kv.sst-drop",
    // messaging crate
    "replication.fetch",
    "replication.fetch-batch",
    "cluster.election",
    "offsets.commit",
    // processing crate
    "task.checkpoint",
    "task.restore",
];

/// A failure decision point. Components call [`FailureInjector::tick`]
/// with their site name before fallible operations and abort/crash
/// when it returns `true`.
#[derive(Debug, Clone)]
pub struct FailureInjector {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    ops: AtomicU64,
    schedule: Mutex<BTreeSet<u64>>,
    probability_millionths: AtomicU64,
    rng: Mutex<rand::rngs::StdRng>,
    fired: AtomicU64,
    per_site: Mutex<BTreeMap<&'static str, (u64, u64)>>,
}

impl FailureInjector {
    /// An injector that never fires.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Creates an injector with a deterministic RNG seed (used only when
    /// a probability is configured).
    pub fn new(seed: u64) -> Self {
        FailureInjector {
            inner: Arc::new(Inner {
                ops: AtomicU64::new(0),
                schedule: Mutex::new(BTreeSet::new()),
                probability_millionths: AtomicU64::new(0),
                rng: Mutex::new(seeded(seed)),
                fired: AtomicU64::new(0),
                per_site: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Schedules a failure at the `n`-th future call to [`tick`](Self::tick)
    /// (1-based relative to the operations seen so far).
    pub fn fail_at(&self, n: u64) {
        let base = self.inner.ops.load(Ordering::SeqCst);
        self.inner.schedule.lock().insert(base + n);
    }

    /// Sets the per-operation failure probability (0.0..=1.0).
    pub fn set_probability(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner
            .probability_millionths
            .store((p * 1_000_000.0) as u64, Ordering::SeqCst);
    }

    /// Registers one operation at the named [`SITES`] entry; returns
    /// `true` if the component should fail now. In debug builds an
    /// unregistered site name is a programming error and aborts —
    /// release builds skip the check (the static pass enforces it at
    /// lint time anyway).
    pub fn tick(&self, site: &'static str) -> bool {
        debug_assert!(
            SITES.contains(&site),
            "fault site {site:?} is not registered in sim::failure::SITES"
        );
        // Under liquid-check, the order fault sites fire in is the
        // order these counters advance — a schedule point. No-op
        // outside a model run.
        crate::sched::tick_point(Arc::as_ptr(&self.inner) as usize, site);
        let op = self.inner.ops.fetch_add(1, Ordering::SeqCst) + 1;
        let scheduled = self.inner.schedule.lock().remove(&op);
        let fired = scheduled || {
            let p = self.inner.probability_millionths.load(Ordering::SeqCst);
            p > 0 && self.inner.rng.lock().gen_range(0..1_000_000u64) < p
        };
        if fired {
            self.inner.fired.fetch_add(1, Ordering::SeqCst);
        }
        let mut per_site = self.inner.per_site.lock();
        let counts = per_site.entry(site).or_insert((0, 0));
        counts.0 += 1;
        counts.1 += u64::from(fired);
        fired
    }

    /// Operations observed so far.
    pub fn operations(&self) -> u64 {
        self.inner.ops.load(Ordering::SeqCst)
    }

    /// Failures fired so far.
    pub fn failures(&self) -> u64 {
        self.inner.fired.load(Ordering::SeqCst)
    }

    /// Per-site `(operations, failures)` so far — chaos-run reports use
    /// this to say which operation an injected fault actually hit.
    pub fn site_counts(&self) -> Vec<(&'static str, u64, u64)> {
        self.inner
            .per_site
            .lock()
            .iter()
            .map(|(site, &(ops, fails))| (*site, ops, fails))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let f = FailureInjector::disabled();
        for _ in 0..1000 {
            assert!(!f.tick("log.append"));
        }
        assert_eq!(f.failures(), 0);
    }

    #[test]
    fn fail_at_fires_exactly_once() {
        let f = FailureInjector::new(0);
        f.fail_at(3);
        assert!(!f.tick("log.append"));
        assert!(!f.tick("log.append"));
        assert!(f.tick("log.append"));
        assert!(!f.tick("log.append"));
        assert_eq!(f.failures(), 1);
    }

    #[test]
    fn fail_at_is_relative_to_current_ops() {
        let f = FailureInjector::new(0);
        f.tick("log.append");
        f.tick("log.append");
        f.fail_at(1);
        assert!(f.tick("log.append"));
    }

    #[test]
    fn probability_fires_roughly_proportionally() {
        let f = FailureInjector::new(42);
        f.set_probability(0.1);
        let mut fired = 0;
        for _ in 0..10_000 {
            if f.tick("log.append") {
                fired += 1;
            }
        }
        assert!(
            (700..1300).contains(&fired),
            "fired {fired} of 10k at p=0.1"
        );
    }

    #[test]
    fn clones_share_state() {
        let f = FailureInjector::new(0);
        let g = f.clone();
        f.fail_at(1);
        assert!(g.tick("log.append"));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        FailureInjector::new(0).set_probability(1.5);
    }

    #[test]
    fn probability_zero_never_fires() {
        let f = FailureInjector::new(7);
        f.set_probability(0.0);
        for _ in 0..1000 {
            assert!(!f.tick("log.append"));
        }
        assert_eq!(f.failures(), 0);
        assert_eq!(f.operations(), 1000);
    }

    #[test]
    fn probability_one_always_fires() {
        let f = FailureInjector::new(7);
        f.set_probability(1.0);
        for _ in 0..1000 {
            assert!(f.tick("log.append"));
        }
        assert_eq!(f.failures(), 1000);
    }

    #[test]
    fn per_site_counts_split_operations_and_failures() {
        let f = FailureInjector::new(0);
        f.fail_at(2);
        f.tick("log.append");
        f.tick("kv.flush");
        f.tick("kv.flush");
        let counts = f.site_counts();
        assert_eq!(counts, vec![("kv.flush", 2, 1), ("log.append", 1, 0)]);
        assert_eq!(f.operations(), 3);
        assert_eq!(f.failures(), 1);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "site check is debug-only")]
    #[should_panic(expected = "not registered in sim::failure::SITES")]
    fn unregistered_site_aborts_in_debug() {
        // lint:allow(fault-site, reason=this test exists to prove unregistered names abort)
        FailureInjector::disabled().tick("no.such.site");
    }

    #[test]
    fn fail_at_one_fires_on_next_tick() {
        // fail_at is 1-based: fail_at(1) means "the very next tick".
        let f = FailureInjector::new(0);
        f.fail_at(1);
        assert!(f.tick("log.append"));
        assert!(!f.tick("log.append"));
    }

    #[test]
    fn multiple_schedules_fire_independently() {
        let f = FailureInjector::new(0);
        f.fail_at(2);
        f.fail_at(4);
        let fired: Vec<bool> = (0..5).map(|_| f.tick("log.append")).collect();
        assert_eq!(fired, vec![false, true, false, true, false]);
        assert_eq!(f.failures(), 2);
        assert_eq!(f.operations(), 5);
    }

    #[test]
    fn fired_accounting_counts_schedule_and_probability() {
        let f = FailureInjector::new(3);
        f.fail_at(1);
        assert!(f.tick("log.append"));
        f.set_probability(1.0);
        assert!(f.tick("log.append"));
        assert_eq!(f.failures(), 2);
    }

    #[test]
    fn same_seed_same_probabilistic_stream() {
        let a = FailureInjector::new(99);
        let b = FailureInjector::new(99);
        a.set_probability(0.5);
        b.set_probability(0.5);
        for _ in 0..1000 {
            assert_eq!(a.tick("log.append"), b.tick("log.append"));
        }
        assert_eq!(a.failures(), b.failures());
    }
}
