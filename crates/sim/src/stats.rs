//! Re-export shim: the counter and histogram moved to
//! [`liquid_obs::stats`] when the unified observability layer landed,
//! so the registry, the benchmark harness, and the fault-crate hot
//! paths share one implementation. Existing `liquid_sim::stats` users
//! keep compiling through these re-exports.

pub use liquid_obs::stats::{Counter, Histogram};
