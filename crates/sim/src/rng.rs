//! Seeded randomness and skewed distributions.
//!
//! Workload generators and failure injectors must be reproducible, so all
//! randomness in the workspace flows through explicitly seeded RNGs
//! created here. A hand-rolled [`Zipf`] sampler provides the key skew the
//! paper's use cases exhibit (a few hot users/pages dominate updates)
//! without pulling in crates outside the approved dependency set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label, so
/// independent components seeded from one experiment seed do not share
/// streams. Uses the SplitMix64 finalizer.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Zipf-distributed sampler over `1..=n` with exponent `s`.
///
/// Uses inverse-CDF sampling over a precomputed table, which is exact and
/// fast for the `n` (≤ a few million) used by our workloads.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[i]` is P(X <= i+1).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `1..=n` with skew `s`.
    ///
    /// `s = 0.0` is uniform; `s ≈ 1.0` is classic web-workload skew.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        let norm = total;
        for p in &mut cdf {
            *p /= norm;
        }
        // Guard against floating point drift on the last bucket.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of distinct values in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point returns the count of entries < u, i.e. the index
        // of the first cdf entry >= u; +1 maps to the 1-based value.
        self.cdf.partition_point(|&p| p < u) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(1);
        let mut b = seeded(1);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_seed_spreads_streams() {
        let s = 12345;
        let children: Vec<u64> = (0..8).map(|i| derive_seed(s, i)).collect();
        for i in 0..children.len() {
            for j in (i + 1)..children.len() {
                assert_ne!(children[i], children[j]);
            }
        }
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = seeded(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for &c in &counts {
            // Each bucket should get ~10k; allow wide tolerance.
            assert!((7_000..13_000).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn zipf_skews_to_small_values() {
        let z = Zipf::new(1_000, 1.0);
        let mut rng = seeded(11);
        let mut head = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(&mut rng) <= 10 {
                head += 1;
            }
        }
        // With s=1 over 1000 values, the top-10 carry ~39% of mass.
        assert!(head > n / 3, "head share too small: {head}/{n}");
    }

    #[test]
    fn zipf_sample_in_support() {
        let z = Zipf::new(5, 1.2);
        let mut rng = seeded(3);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }
}
