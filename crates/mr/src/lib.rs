//! MapReduce over the mini-DFS — the paper's baseline stack (Figure 1,
//! §1–§2).
//!
//! The legacy data-integration architecture Liquid replaces runs
//! "custom ETL-like MR jobs" whose **intermediate results are written
//! to the DFS, resulting in higher latencies as job pipelines grow in
//! length" (§1, limitation 1). This crate implements that baseline so
//! experiment E1 measures the per-stage cost instead of asserting it:
//!
//! * map tasks read whole input files from [`liquid_dfs::Dfs`], emit
//!   key/value pairs, and spill one intermediate file per reduce
//!   partition back to the DFS;
//! * reduce tasks pull their partitions, sort/group by key, apply the
//!   reducer and write final output files;
//! * every task is charged a fixed **startup cost** (scheduling +
//!   JVM-spinup analogue) on top of the DFS's simulated I/O costs;
//! * [`MrPipeline`] chains jobs, each stage reading the previous
//!   stage's output *from the DFS* — exactly the high-overhead-per-stage
//!   structure the paper criticizes.
//!
//! Records travel as UTF-8 lines `key\tvalue`.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use liquid_dfs::Dfs;

/// Errors from MapReduce execution.
#[derive(Debug)]
pub enum MrError {
    /// DFS operation failed.
    Dfs(liquid_dfs::DfsError),
    /// No input files matched the prefix.
    EmptyInput(String),
    /// Configuration invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::Dfs(e) => write!(f, "dfs error: {e}"),
            MrError::EmptyInput(p) => write!(f, "no input files under {p}"),
            MrError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for MrError {}

impl From<liquid_dfs::DfsError> for MrError {
    fn from(e: liquid_dfs::DfsError) -> Self {
        MrError::Dfs(e)
    }
}

/// Result alias for MapReduce operations.
pub type Result<T> = std::result::Result<T, MrError>;

/// Collects key/value pairs emitted by map/reduce functions.
#[derive(Debug, Default)]
pub struct Emitter {
    pairs: Vec<(String, String)>,
}

impl Emitter {
    /// Emits one pair.
    pub fn emit(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.pairs.push((key.into(), value.into()));
    }

    /// Pairs emitted so far.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }
}

/// Map function: `(key, value, emitter)`.
pub trait Mapper: Send + Sync {
    /// Processes one input record.
    fn map(&self, key: &str, value: &str, out: &mut Emitter);
}

impl<F> Mapper for F
where
    F: Fn(&str, &str, &mut Emitter) + Send + Sync,
{
    fn map(&self, key: &str, value: &str, out: &mut Emitter) {
        self(key, value, out)
    }
}

/// Reduce function: `(key, values, emitter)`.
pub trait Reducer: Send + Sync {
    /// Processes one key group.
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter);
}

impl<F> Reducer for F
where
    F: Fn(&str, &[String], &mut Emitter) + Send + Sync,
{
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
        self(key, values, out)
    }
}

/// Configuration for one MapReduce job.
#[derive(Debug, Clone)]
pub struct MrJobConfig {
    /// Job name (namespaces intermediate files).
    pub name: String,
    /// Input: every DFS file under this prefix.
    pub input_prefix: String,
    /// Output files written under this prefix (`part-<r>`).
    pub output_prefix: String,
    /// Number of reduce partitions.
    pub reducers: usize,
    /// Simulated startup cost per task (scheduling, process spin-up).
    pub task_startup_ns: u64,
}

impl MrJobConfig {
    /// A job with 2 reducers and a 1-second task startup cost (the
    /// order of magnitude of a 2014 Hadoop task launch).
    pub fn new(name: &str, input_prefix: &str, output_prefix: &str) -> Self {
        MrJobConfig {
            name: name.to_string(),
            input_prefix: input_prefix.to_string(),
            output_prefix: output_prefix.to_string(),
            reducers: 2,
            task_startup_ns: 1_000_000_000,
        }
    }

    /// Sets the reduce parallelism.
    pub fn reducers(mut self, n: usize) -> Self {
        self.reducers = n;
        self
    }

    /// Sets the simulated per-task startup cost.
    pub fn task_startup_ns(mut self, ns: u64) -> Self {
        self.task_startup_ns = ns;
        self
    }
}

/// Outcome of a job run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Map tasks executed (one per input file).
    pub map_tasks: u64,
    /// Reduce tasks executed.
    pub reduce_tasks: u64,
    /// Input records read.
    pub records_read: u64,
    /// Output records written.
    pub records_written: u64,
    /// Total simulated cost: task startups + all DFS I/O (ns).
    pub simulated_ns: u64,
}

/// Runs one MapReduce job to completion.
pub fn run_job<M: Mapper, R: Reducer>(
    dfs: &Dfs,
    config: &MrJobConfig,
    mapper: &M,
    reducer: &R,
) -> Result<JobStats> {
    if config.reducers == 0 {
        return Err(MrError::InvalidConfig("reducers must be > 0".into()));
    }
    let inputs = dfs.list(&config.input_prefix);
    if inputs.is_empty() {
        return Err(MrError::EmptyInput(config.input_prefix.clone()));
    }
    let mut stats = JobStats::default();
    let tmp = format!("/tmp/{}", config.name);

    // Map phase: one task per input file.
    for (mi, path) in inputs.iter().enumerate() {
        stats.map_tasks += 1;
        stats.simulated_ns += config.task_startup_ns;
        let (data, cost) = dfs.read(path)?;
        stats.simulated_ns += cost;
        let mut emitter = Emitter::default();
        for line in std::str::from_utf8(&data).unwrap_or("").lines() {
            let (k, v) = line.split_once('\t').unwrap_or((line, ""));
            stats.records_read += 1;
            mapper.map(k, v, &mut emitter);
        }
        // Spill: one intermediate file per reduce partition, written to
        // the DFS (the paper's limitation 1).
        let mut partitions: Vec<String> = vec![String::new(); config.reducers];
        for (k, v) in emitter.pairs() {
            let r = partition_of(k, config.reducers);
            partitions[r].push_str(k);
            partitions[r].push('\t');
            partitions[r].push_str(v);
            partitions[r].push('\n');
        }
        for (r, content) in partitions.iter().enumerate() {
            let path = format!("{tmp}/map-{mi}-part-{r}");
            stats.simulated_ns += dfs.write(&path, content.as_bytes())?;
        }
    }

    // Reduce phase.
    for r in 0..config.reducers {
        stats.reduce_tasks += 1;
        stats.simulated_ns += config.task_startup_ns;
        let mut groups: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for mi in 0..stats.map_tasks {
            let path = format!("{tmp}/map-{mi}-part-{r}");
            let (data, cost) = dfs.read(&path)?;
            stats.simulated_ns += cost;
            for line in std::str::from_utf8(&data).unwrap_or("").lines() {
                let (k, v) = line.split_once('\t').unwrap_or((line, ""));
                groups.entry(k.to_string()).or_default().push(v.to_string());
            }
        }
        let mut emitter = Emitter::default();
        for (k, vs) in &groups {
            reducer.reduce(k, vs, &mut emitter);
        }
        let mut out = String::new();
        for (k, v) in emitter.pairs() {
            stats.records_written += 1;
            out.push_str(k);
            out.push('\t');
            out.push_str(v);
            out.push('\n');
        }
        stats.simulated_ns += dfs.write(
            &format!("{}/part-{r}", config.output_prefix),
            out.as_bytes(),
        )?;
    }

    // Garbage-collect intermediates (kept until here for fault
    // tolerance, as in Hadoop).
    for path in dfs.list(&tmp) {
        dfs.delete(&path)?;
    }
    Ok(stats)
}

fn partition_of(key: &str, reducers: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % reducers as u64) as usize
}

/// A chain of MapReduce jobs, each reading the previous stage's output
/// from the DFS.
pub struct MrPipeline<'a> {
    dfs: &'a Dfs,
    stages: Vec<MrJobConfig>,
}

impl<'a> MrPipeline<'a> {
    /// An empty pipeline over `dfs`.
    pub fn new(dfs: &'a Dfs) -> Self {
        MrPipeline {
            dfs,
            stages: Vec::new(),
        }
    }

    /// Appends a stage.
    pub fn add_stage(&mut self, config: MrJobConfig) -> &mut Self {
        self.stages.push(config);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Runs all stages sequentially with the same map/reduce logic per
    /// stage (identity-style ETL chains); returns per-stage stats.
    pub fn run<M: Mapper, R: Reducer>(&self, mapper: &M, reducer: &R) -> Result<Vec<JobStats>> {
        let mut out = Vec::with_capacity(self.stages.len());
        for config in &self.stages {
            out.push(run_job(self.dfs, config, mapper, reducer)?);
        }
        Ok(out)
    }
}

/// Identity mapper: forwards records unchanged.
pub fn identity_map(key: &str, value: &str, out: &mut Emitter) {
    out.emit(key, value);
}

/// Identity reducer: forwards every value under its key.
pub fn identity_reduce(key: &str, values: &[String], out: &mut Emitter) {
    for v in values {
        out.emit(key, v.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liquid_dfs::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig {
            block_size: 4096,
            replication: 1,
            datanodes: 1,
            ..DfsConfig::default()
        })
    }

    fn write_lines(d: &Dfs, path: &str, lines: &[(&str, &str)]) {
        let content: String = lines.iter().map(|(k, v)| format!("{k}\t{v}\n")).collect();
        d.write(path, content.as_bytes()).unwrap();
    }

    #[test]
    fn word_count_end_to_end() {
        let d = dfs();
        write_lines(
            &d,
            "/in/f1",
            &[("1", "the quick brown fox"), ("2", "the lazy dog")],
        );
        write_lines(&d, "/in/f2", &[("3", "the end")]);
        let config = MrJobConfig::new("wc", "/in/", "/out").reducers(2);
        let mapper = |_k: &str, v: &str, out: &mut Emitter| {
            for w in v.split_whitespace() {
                out.emit(w, "1");
            }
        };
        let reducer = |k: &str, vs: &[String], out: &mut Emitter| {
            out.emit(k, vs.len().to_string());
        };
        let stats = run_job(&d, &config, &mapper, &reducer).unwrap();
        assert_eq!(stats.map_tasks, 2);
        assert_eq!(stats.reduce_tasks, 2);
        assert_eq!(stats.records_read, 3);
        // Collect output and check "the" -> 3.
        let mut all = String::new();
        for path in d.list("/out/") {
            let (data, _) = d.read(&path).unwrap();
            all.push_str(std::str::from_utf8(&data).unwrap());
        }
        assert!(all.contains("the\t3"), "output was: {all}");
        assert!(all.contains("fox\t1"));
    }

    #[test]
    fn startup_cost_dominates_small_jobs() {
        let d = dfs();
        write_lines(&d, "/in/tiny", &[("k", "v")]);
        let fast = run_job(
            &d,
            &MrJobConfig::new("fast", "/in/", "/out-fast").task_startup_ns(0),
            &identity_map,
            &identity_reduce,
        )
        .unwrap();
        let slow = run_job(
            &d,
            &MrJobConfig::new("slow", "/in/", "/out-slow").task_startup_ns(1_000_000_000),
            &identity_map,
            &identity_reduce,
        )
        .unwrap();
        assert!(slow.simulated_ns > fast.simulated_ns + 2_900_000_000);
    }

    #[test]
    fn intermediates_are_cleaned_up() {
        let d = dfs();
        write_lines(&d, "/in/f", &[("a", "1")]);
        run_job(
            &d,
            &MrJobConfig::new("clean", "/in/", "/out"),
            &identity_map,
            &identity_reduce,
        )
        .unwrap();
        assert!(d.list("/tmp/clean").is_empty());
        assert!(!d.list("/out").is_empty());
    }

    #[test]
    fn empty_input_rejected() {
        let d = dfs();
        assert!(matches!(
            run_job(
                &d,
                &MrJobConfig::new("x", "/nowhere/", "/out"),
                &identity_map,
                &identity_reduce
            ),
            Err(MrError::EmptyInput(_))
        ));
    }

    #[test]
    fn zero_reducers_rejected() {
        let d = dfs();
        write_lines(&d, "/in/f", &[("a", "1")]);
        assert!(run_job(
            &d,
            &MrJobConfig::new("x", "/in/", "/out").reducers(0),
            &identity_map,
            &identity_reduce
        )
        .is_err());
    }

    #[test]
    fn pipeline_cost_grows_linearly_with_stages() {
        // The E1 shape in miniature: per-stage cost is roughly constant,
        // so end-to-end latency grows linearly with pipeline length.
        let d = dfs();
        let content: String = (0..50).map(|i| format!("k{i}\tv\n")).collect();
        d.write("/stage0/f", content.as_bytes()).unwrap();
        let mut pipeline = MrPipeline::new(&d);
        for s in 0..3 {
            pipeline.add_stage(
                MrJobConfig::new(
                    &format!("stage{}", s + 1),
                    &format!("/stage{s}/"),
                    &format!("/stage{}", s + 1),
                )
                .reducers(1),
            );
        }
        let stats = pipeline.run(&identity_map, &identity_reduce).unwrap();
        assert_eq!(stats.len(), 3);
        let total: u64 = stats.iter().map(|s| s.simulated_ns).sum();
        assert!(total > 3 * stats[0].simulated_ns / 2);
        // Each stage costs at least its startup overheads.
        for s in &stats {
            assert!(
                s.simulated_ns >= 2_000_000_000,
                "stage cost {}",
                s.simulated_ns
            );
        }
        // Records survive all stages.
        assert_eq!(stats[2].records_written, 50);
    }

    #[test]
    fn partitioning_is_stable() {
        assert_eq!(partition_of("user-1", 4), partition_of("user-1", 4));
        // Different keys spread over partitions.
        let used: std::collections::HashSet<usize> = (0..100)
            .map(|i| partition_of(&format!("k{i}"), 4))
            .collect();
        assert!(used.len() >= 3);
    }
}
