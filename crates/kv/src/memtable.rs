//! The mutable in-memory layer of the LSM tree.
//!
//! All writes land here first (after the WAL). A `None` value is a
//! tombstone shadowing any older value for the key in deeper levels.

use std::collections::BTreeMap;
use std::ops::Bound;

use bytes::Bytes;

/// Sorted in-memory write buffer.
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    entries: BTreeMap<Bytes, Option<Bytes>>,
    approx_bytes: usize,
}

impl Memtable {
    /// New, empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: Bytes, value: Bytes) {
        self.apply(key, Some(value));
    }

    /// Writes a tombstone for `key`.
    pub fn delete(&mut self, key: Bytes) {
        self.apply(key, None);
    }

    fn apply(&mut self, key: Bytes, value: Option<Bytes>) {
        let add = key.len() + value.as_ref().map_or(0, |v| v.len()) + 32;
        if let Some(old) = self.entries.insert(key, value) {
            let _ = old; // size accounting stays approximate on overwrite
        }
        self.approx_bytes += add;
    }

    /// Looks up a key. `None` = not present here; `Some(None)` =
    /// tombstoned here; `Some(Some(v))` = live value.
    pub fn get(&self, key: &[u8]) -> Option<Option<Bytes>> {
        self.entries.get(key).cloned()
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate memory footprint in bytes (grows monotonically;
    /// reset by flushing).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterates entries within `[start, end)` in key order (tombstones
    /// included).
    pub fn range<'a>(
        &'a self,
        start: Bound<&'a [u8]>,
        end: Bound<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a Bytes, &'a Option<Bytes>)> + 'a {
        self.entries.range::<[u8], _>((start, end))
    }

    /// Consumes the memtable into its sorted entries.
    pub fn into_entries(self) -> Vec<(Bytes, Option<Bytes>)> {
        self.entries.into_iter().collect()
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Option<Bytes>)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn put_get() {
        let mut m = Memtable::new();
        m.put(b("a"), b("1"));
        assert_eq!(m.get(b"a"), Some(Some(b("1"))));
        assert_eq!(m.get(b"b"), None);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = Memtable::new();
        m.put(b("a"), b("1"));
        m.put(b("a"), b("2"));
        assert_eq!(m.get(b"a"), Some(Some(b("2"))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn delete_leaves_tombstone() {
        let mut m = Memtable::new();
        m.put(b("a"), b("1"));
        m.delete(b("a"));
        assert_eq!(m.get(b"a"), Some(None));
        assert_eq!(m.len(), 1, "tombstone still occupies an entry");
    }

    #[test]
    fn delete_of_absent_key_records_tombstone() {
        let mut m = Memtable::new();
        m.delete(b("ghost"));
        assert_eq!(m.get(b"ghost"), Some(None));
    }

    #[test]
    fn range_is_sorted_and_bounded() {
        let mut m = Memtable::new();
        for k in ["d", "a", "c", "b", "e"] {
            m.put(b(k), b(k));
        }
        let keys: Vec<_> = m
            .range(
                Bound::Included(b"b".as_ref()),
                Bound::Excluded(b"e".as_ref()),
            )
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(keys, vec![b("b"), b("c"), b("d")]);
    }

    #[test]
    fn size_grows_with_writes() {
        let mut m = Memtable::new();
        let before = m.approx_bytes();
        m.put(b("key"), b("value"));
        assert!(m.approx_bytes() > before);
    }

    #[test]
    fn into_entries_sorted() {
        let mut m = Memtable::new();
        m.put(b("z"), b("1"));
        m.put(b("a"), b("2"));
        m.delete(b("m"));
        let e = m.into_entries();
        assert_eq!(e.len(), 3);
        assert!(e.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
