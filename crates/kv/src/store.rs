//! The LSM store: memtable + WAL + leveled SSTables.
//!
//! Write path: WAL append → memtable insert; when the memtable exceeds
//! its budget it is flushed to a level-0 SSTable and the WAL truncated.
//! Read path: memtable, then level 0 newest-first, then deeper levels.
//! Compaction is size-tiered: when a level accumulates more than
//! `level_limit` tables they are merged into a single table one level
//! down (tombstones are dropped when merging into the bottom level).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use liquid_obs::{CounterHandle, Obs};
use liquid_sim::failure::FailureInjector;

use crate::memtable::Memtable;
use crate::sstable::SsTable;
use crate::wal::{Wal, WalOp};

/// How the store reclaims old data — the same whole-file drop shape as
/// the log's retention policy: expired SSTables are dropped whole from
/// the bottom level (oldest data first), an O(1) unlink per table,
/// never a record rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SstRetention {
    /// Never drop anything (the default).
    #[default]
    KeepAll,
    /// Drop the oldest bottom-level SSTables while the store exceeds
    /// `max_bytes`.
    DropByBytes {
        /// Total store size to shrink back under.
        max_bytes: usize,
    },
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Flush the memtable after it exceeds this many bytes.
    pub memtable_bytes: usize,
    /// Merge a level once it holds more than this many tables.
    pub level_limit: usize,
    /// Number of levels (the last is the bottom; tombstones dropped
    /// when compacting into it).
    pub max_levels: usize,
    /// Bloom filter bits per key.
    pub bits_per_key: usize,
    /// Directory for WAL + SSTables; `None` = fully in-memory.
    pub dir: Option<PathBuf>,
    /// Retention bound enforced by [`LsmStore::enforce_retention`].
    pub retention: SstRetention,
    /// Fault injector for WAL / flush / compaction crash points.
    pub injector: FailureInjector,
    /// Observability domain the store reports into. Cloned configs
    /// share instruments; the default is a fresh private domain.
    pub obs: Obs,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: 1 << 20,
            level_limit: 4,
            max_levels: 5,
            bits_per_key: 10,
            dir: None,
            retention: SstRetention::KeepAll,
            injector: FailureInjector::disabled(),
            obs: Obs::default(),
        }
    }
}

/// Registry handles for the store's write paths, resolved once at
/// open. These are the twin counters of the `kv.*` fault sites.
#[derive(Debug, Clone)]
struct KvMetrics {
    wal_append: CounterHandle,
    flush: CounterHandle,
    sst_write: CounterHandle,
    compact: CounterHandle,
    sst_drop: CounterHandle,
}

impl KvMetrics {
    fn resolve(obs: &Obs) -> Self {
        let reg = obs.registry();
        KvMetrics {
            wal_append: reg.counter("kv.wal-append"),
            flush: reg.counter("kv.flush"),
            sst_write: reg.counter("kv.sst-write"),
            compact: reg.counter("kv.compact"),
            sst_drop: reg.counter("kv.sst-drop"),
        }
    }
}

/// Counters for observability and the state-store benchmarks.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Point lookups answered from the memtable.
    pub memtable_hits: u64,
    /// Point lookups answered from an SSTable.
    pub sstable_hits: u64,
    /// SSTables skipped thanks to bloom filters.
    pub bloom_skips: u64,
}

/// An embedded LSM key-value store.
pub struct LsmStore {
    config: LsmConfig,
    memtable: Memtable,
    wal: Wal,
    /// `levels[0]` is newest-first; deeper levels hold at most
    /// `level_limit` tables each.
    levels: Vec<Vec<Arc<SsTable>>>,
    next_table_id: u64,
    stats: StoreStats,
    metrics: KvMetrics,
}

impl LsmStore {
    /// Opens a store. With a directory configured, recovers the WAL and
    /// loads existing SSTables; otherwise starts empty.
    pub fn open(config: LsmConfig) -> crate::Result<Self> {
        let mut levels = vec![Vec::new(); config.max_levels];
        let mut next_table_id = 1;
        let (wal, replayed) = match &config.dir {
            Some(dir) => {
                // lint:allow(raw-io, reason=directory creation is store setup, not data-path I/O; faults here surface as open() errors)
                std::fs::create_dir_all(dir)?;
                // Load SSTables: files named L{level}-{id}.sst.
                let mut found: Vec<(usize, u64, PathBuf)> = Vec::new();
                // lint:allow(raw-io, reason=directory listing during recovery; the injectable path is the per-table read_from below)
                for entry in std::fs::read_dir(dir)? {
                    let entry = entry?;
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if let Some(rest) = name.strip_prefix('L') {
                        if let Some(stem) = rest.strip_suffix(".sst") {
                            if let Some((lvl, id)) = stem.split_once('-') {
                                if let (Ok(lvl), Ok(id)) = (lvl.parse::<usize>(), id.parse::<u64>())
                                {
                                    found.push((lvl, id, entry.path()));
                                }
                            }
                        }
                    }
                }
                // Newest (highest id) first within each level.
                found.sort_by_key(|&(lvl, id, _)| (lvl, std::cmp::Reverse(id)));
                for (lvl, id, path) in found {
                    if lvl < levels.len() {
                        levels[lvl].push(Arc::new(SsTable::read_from(&path)?));
                        next_table_id = next_table_id.max(id + 1);
                    }
                }
                Wal::open(&dir.join("wal.log"))?
            }
            None => (Wal::memory(), Vec::new()),
        };
        let mut memtable = Memtable::new();
        for op in replayed {
            match op {
                WalOp::Put(k, v) => memtable.put(k, v),
                WalOp::Delete(k) => memtable.delete(k),
            }
        }
        Ok(LsmStore {
            metrics: KvMetrics::resolve(&config.obs),
            config,
            memtable,
            wal,
            levels,
            next_table_id,
            stats: StoreStats::default(),
        })
    }

    /// Fully in-memory store with default tuning.
    pub fn in_memory() -> Self {
        // lint:allow(panic-reachability, reason=default config has no dir and a disabled injector, so open takes only the infallible in-memory path)
        LsmStore::open(LsmConfig::default()).expect("in-memory open cannot fail")
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> crate::Result<()> {
        let (key, value) = (key.into(), value.into());
        self.metrics.wal_append.inc();
        if self.config.injector.tick("kv.wal-append") {
            // Crash mid-write: half the frame reaches the medium, the
            // memtable never sees the entry. Recovery drops the torn tail.
            self.wal.append_torn(&WalOp::Put(key, value))?;
            return Err(crate::KvError::Injected("kv.wal-append"));
        }
        self.wal.append(&WalOp::Put(key.clone(), value.clone()))?;
        self.memtable.put(key, value);
        self.maybe_flush()
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&mut self, key: impl Into<Bytes>) -> crate::Result<()> {
        let key = key.into();
        self.metrics.wal_append.inc();
        if self.config.injector.tick("kv.wal-append") {
            self.wal.append_torn(&WalOp::Delete(key))?;
            return Err(crate::KvError::Injected("kv.wal-append"));
        }
        self.wal.append(&WalOp::Delete(key.clone()))?;
        self.memtable.delete(key);
        self.maybe_flush()
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Option<Bytes> {
        if let Some(hit) = self.memtable.get(key) {
            self.stats.memtable_hits += 1;
            return hit;
        }
        for level in &self.levels {
            for table in level {
                if !table.bloom_may_contain(key) {
                    self.stats.bloom_skips += 1;
                    continue;
                }
                if let Some(hit) = table.get(key) {
                    self.stats.sstable_hits += 1;
                    return hit;
                }
            }
        }
        None
    }

    /// Ordered scan of live entries with `start <= key < end`
    /// (`None` bound = open).
    pub fn range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        self.merged_view(start, end)
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    /// All live entries in key order.
    pub fn scan_all(&self) -> Vec<(Bytes, Bytes)> {
        self.range(None, None)
    }

    /// Number of live entries (scans; intended for tests and state
    /// restore verification, not hot paths).
    pub fn len(&self) -> usize {
        self.scan_all().len()
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent point-in-time view: later writes to the store do not
    /// affect it.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            memtable: self.memtable.clone(),
            levels: self.levels.clone(),
        }
    }

    /// Forces the memtable to an SSTable regardless of size.
    pub fn flush(&mut self) -> crate::Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        self.metrics.flush.inc();
        if self.config.injector.tick("kv.flush") {
            // Crash before any state moves: memtable and WAL intact.
            return Err(crate::KvError::Injected("kv.flush"));
        }
        let entries = std::mem::take(&mut self.memtable).into_entries();
        self.metrics.sst_write.inc();
        if self.config.injector.tick("kv.sst-write") {
            // Crash while writing the SSTable. The WAL still holds every
            // entry, so a restart would replay them into the memtable —
            // emulate that by putting the entries back.
            for (k, v) in entries {
                match v {
                    Some(v) => self.memtable.put(k, v),
                    None => self.memtable.delete(k),
                }
            }
            return Err(crate::KvError::Injected("kv.sst-write"));
        }
        let id = self.next_table_id;
        self.next_table_id += 1;
        let table = SsTable::build(id, entries, self.config.bits_per_key);
        if let Some(dir) = &self.config.dir {
            table.write_to(&dir.join(format!("L0-{id}.sst")))?;
        }
        match self.levels.get_mut(0) {
            Some(l0) => l0.insert(0, Arc::new(table)),
            None => self.levels.push(vec![Arc::new(table)]),
        }
        self.wal.truncate()?;
        self.stats.flushes += 1;
        self.maybe_compact()?;
        Ok(())
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Number of SSTables per level (for tests/benches).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }

    /// Approximate bytes across memtable and tables.
    pub fn approx_bytes(&self) -> usize {
        self.memtable.approx_bytes()
            + self
                .levels
                .iter()
                .flatten()
                .map(|t| t.size_bytes())
                .sum::<usize>()
    }

    /// Applies the retention bound: whole SSTables are dropped from the
    /// deepest non-empty level, oldest first, until the store fits under
    /// the configured size — each drop is one O(1) file unlink, never a
    /// rewrite (the same segment-drop shape as the log's retention).
    /// Returns the ids of the dropped tables.
    pub fn enforce_retention(&mut self) -> crate::Result<Vec<u64>> {
        let SstRetention::DropByBytes { max_bytes } = self.config.retention else {
            return Ok(Vec::new());
        };
        let mut dropped = Vec::new();
        while self.approx_bytes() > max_bytes {
            // Victim: the oldest table (levels are newest-first) in the
            // deepest non-empty level — the store's oldest data.
            let Some(level) = self.levels.iter().rposition(|l| !l.is_empty()) else {
                break; // only the memtable is over budget; nothing to drop
            };
            self.metrics.sst_drop.inc();
            if self.config.injector.tick("kv.sst-drop") {
                // Crash before the unlink: every table still present.
                return Err(crate::KvError::Injected("kv.sst-drop"));
            }
            let Some(victim) = self.levels.get_mut(level).and_then(|l| l.pop()) else {
                break;
            };
            if let Some(dir) = &self.config.dir {
                let path = dir.join(format!("L{level}-{}.sst", victim.id()));
                if path.exists() {
                    // lint:allow(raw-io, reason=whole-table unlink after the drop commits; the fault point is the kv.sst-drop tick above)
                    std::fs::remove_file(path)?;
                }
            }
            dropped.push(victim.id());
        }
        Ok(dropped)
    }

    fn maybe_flush(&mut self) -> crate::Result<()> {
        if self.memtable.approx_bytes() >= self.config.memtable_bytes {
            self.flush()?;
        }
        Ok(())
    }

    fn maybe_compact(&mut self) -> crate::Result<()> {
        for level in 0..self.levels.len() {
            if self.levels[level].len() <= self.config.level_limit {
                continue;
            }
            self.metrics.compact.inc();
            if self.config.injector.tick("kv.compact") {
                // Crash before the merge moves anything.
                return Err(crate::KvError::Injected("kv.compact"));
            }
            let target = (level + 1).min(self.levels.len() - 1);
            let bottom = target == self.levels.len() - 1;
            // Merge everything in this level (newest-first order) plus —
            // when merging within the bottom level — the bottom's tables.
            let mut inputs = std::mem::take(&mut self.levels[level]);
            if target == level {
                // Already at the bottom: inputs are the level itself.
            } else if bottom {
                inputs.extend(std::mem::take(&mut self.levels[target]));
            }
            let merged = SsTable::merge(&inputs, bottom);
            let id = self.next_table_id;
            self.next_table_id += 1;
            let table = SsTable::build(id, merged, self.config.bits_per_key);
            if let Some(dir) = &self.config.dir {
                table.write_to(&dir.join(format!("L{target}-{id}.sst")))?;
                for old in &inputs {
                    for lvl in 0..self.levels.len().max(target + 1) {
                        let path = dir.join(format!("L{lvl}-{}.sst", old.id()));
                        if path.exists() {
                            // lint:allow(raw-io, reason=deleting superseded tables after a compaction commit; the fault point is the write_to above)
                            std::fs::remove_file(path)?;
                        }
                    }
                }
            }
            if target == level {
                self.levels[level] = vec![Arc::new(table)];
            } else {
                self.levels[target].insert(0, Arc::new(table));
            }
            self.stats.compactions += 1;
        }
        Ok(())
    }

    fn merged_view(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> BTreeMap<Bytes, Option<Bytes>> {
        merged_view(&self.memtable, &self.levels, start, end)
    }
}

fn merged_view(
    memtable: &Memtable,
    levels: &[Vec<Arc<SsTable>>],
    start: Option<&[u8]>,
    end: Option<&[u8]>,
) -> BTreeMap<Bytes, Option<Bytes>> {
    let mut map = BTreeMap::new();
    // Oldest first: deepest level, oldest table; newer data overwrites.
    for level in levels.iter().rev() {
        for table in level.iter().rev() {
            for (k, v) in table.range(start, end) {
                map.insert(k.clone(), v.clone());
            }
        }
    }
    let lo = match start {
        Some(s) => std::ops::Bound::Included(s),
        None => std::ops::Bound::Unbounded,
    };
    let hi = match end {
        Some(e) => std::ops::Bound::Excluded(e),
        None => std::ops::Bound::Unbounded,
    };
    for (k, v) in memtable.range(lo, hi) {
        map.insert(k.clone(), v.clone());
    }
    map
}

/// A consistent point-in-time view of the store.
pub struct Snapshot {
    memtable: Memtable,
    levels: Vec<Vec<Arc<SsTable>>>,
}

impl Snapshot {
    /// Point lookup within the snapshot.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        if let Some(hit) = self.memtable.get(key) {
            return hit;
        }
        for level in &self.levels {
            for table in level {
                if let Some(hit) = table.get(key) {
                    return hit;
                }
            }
        }
        None
    }

    /// Ordered scan of live entries within the snapshot.
    pub fn range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        merged_view(&self.memtable, &self.levels, start, end)
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn small_store() -> LsmStore {
        LsmStore::open(LsmConfig {
            memtable_bytes: 512,
            level_limit: 2,
            max_levels: 3,
            ..LsmConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn put_get_delete() {
        let mut s = LsmStore::in_memory();
        s.put("a", "1").unwrap();
        assert_eq!(s.get(b"a"), Some(b("1")));
        s.delete("a").unwrap();
        assert_eq!(s.get(b"a"), None);
        assert_eq!(s.get(b"missing"), None);
    }

    #[test]
    fn overwrite_visible_across_flush() {
        let mut s = small_store();
        s.put("k", "old").unwrap();
        s.flush().unwrap();
        s.put("k", "new").unwrap();
        assert_eq!(s.get(b"k"), Some(b("new")));
        s.flush().unwrap();
        assert_eq!(s.get(b"k"), Some(b("new")));
    }

    #[test]
    fn delete_shadows_older_sstable_value() {
        let mut s = small_store();
        s.put("k", "v").unwrap();
        s.flush().unwrap();
        s.delete("k").unwrap();
        s.flush().unwrap();
        assert_eq!(s.get(b"k"), None);
    }

    #[test]
    fn many_writes_trigger_flush_and_compaction() {
        let mut s = small_store();
        for i in 0..500 {
            s.put(format!("key-{i:05}"), format!("value-{i}")).unwrap();
        }
        assert!(s.stats().flushes > 0, "should have flushed");
        assert!(s.stats().compactions > 0, "should have compacted");
        // Every key still readable.
        for i in (0..500).step_by(37) {
            assert_eq!(
                s.get(format!("key-{i:05}").as_bytes()),
                Some(b(&format!("value-{i}"))),
                "key-{i:05}"
            );
        }
    }

    #[test]
    fn range_scan_merges_all_layers() {
        let mut s = small_store();
        for i in 0..100 {
            s.put(format!("k{i:03}"), format!("v{i}")).unwrap();
        }
        s.delete("k050").unwrap();
        let out = s.range(Some(b"k045"), Some(b"k055"));
        let keys: Vec<String> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.to_vec()).unwrap())
            .collect();
        assert_eq!(
            keys,
            vec!["k045", "k046", "k047", "k048", "k049", "k051", "k052", "k053", "k054"]
        );
    }

    #[test]
    fn scan_all_excludes_tombstones() {
        let mut s = small_store();
        for i in 0..50 {
            s.put(format!("k{i}"), "v").unwrap();
        }
        for i in 0..25 {
            s.delete(format!("k{i}")).unwrap();
        }
        assert_eq!(s.len(), 25);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut s = small_store();
        s.put("a", "1").unwrap();
        s.put("b", "2").unwrap();
        let snap = s.snapshot();
        s.put("a", "changed").unwrap();
        s.delete("b").unwrap();
        s.put("c", "3").unwrap();
        assert_eq!(snap.get(b"a"), Some(b("1")));
        assert_eq!(snap.get(b"b"), Some(b("2")));
        assert_eq!(snap.get(b"c"), None);
        assert_eq!(snap.range(None, None).len(), 2);
        // Store sees the new state.
        assert_eq!(s.get(b"a"), Some(b("changed")));
    }

    #[test]
    fn bloom_filters_skip_tables() {
        let mut s = small_store();
        for i in 0..200 {
            s.put(format!("present-{i}"), "v").unwrap();
        }
        s.flush().unwrap();
        for i in 0..200 {
            s.get(format!("absent-{i}").as_bytes());
        }
        assert!(s.stats().bloom_skips > 100, "bloom should skip most");
    }

    #[test]
    fn persistent_store_recovers_memtable_from_wal() {
        let dir = std::env::temp_dir().join(format!(
            "liquid-kv-store-wal-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let cfg = LsmConfig {
            dir: Some(dir.clone()),
            ..LsmConfig::default()
        };
        {
            let mut s = LsmStore::open(cfg.clone()).unwrap();
            s.put("durable", "yes").unwrap();
            s.delete("gone").unwrap();
            // No flush: data only in WAL + memtable.
        }
        let mut s = LsmStore::open(cfg).unwrap();
        assert_eq!(s.get(b"durable"), Some(b("yes")));
        assert_eq!(s.get(b"gone"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_store_recovers_sstables() {
        let dir = std::env::temp_dir().join(format!(
            "liquid-kv-store-sst-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let cfg = LsmConfig {
            memtable_bytes: 256,
            level_limit: 2,
            dir: Some(dir.clone()),
            ..LsmConfig::default()
        };
        {
            let mut s = LsmStore::open(cfg.clone()).unwrap();
            for i in 0..100 {
                s.put(format!("k{i:03}"), format!("v{i}")).unwrap();
            }
            s.flush().unwrap();
        }
        let mut s = LsmStore::open(cfg).unwrap();
        for i in (0..100).step_by(13) {
            assert_eq!(
                s.get(format!("k{i:03}").as_bytes()),
                Some(b(&format!("v{i}")))
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstones_dropped_at_bottom_level() {
        let mut s = LsmStore::open(LsmConfig {
            memtable_bytes: 128,
            level_limit: 1,
            max_levels: 2,
            ..LsmConfig::default()
        })
        .unwrap();
        s.put("doomed", "v").unwrap();
        s.flush().unwrap();
        s.delete("doomed").unwrap();
        s.flush().unwrap();
        // Force compaction cascades into the bottom.
        for i in 0..50 {
            s.put(format!("fill-{i}"), "x").unwrap();
        }
        s.flush().unwrap();
        assert_eq!(s.get(b"doomed"), None);
        // The bottom level should hold exactly one table with no
        // tombstone for "doomed".
        let bottom = s.levels.last().unwrap();
        for t in bottom {
            assert_eq!(t.get(b"doomed"), None, "tombstone must be purged");
        }
    }

    #[test]
    fn retention_drops_oldest_tables_whole() {
        let mut s = LsmStore::open(LsmConfig {
            memtable_bytes: 256,
            level_limit: 100, // no compaction: tables accumulate in L0
            max_levels: 2,
            retention: SstRetention::DropByBytes { max_bytes: 1_024 },
            ..LsmConfig::default()
        })
        .unwrap();
        for i in 0..300 {
            s.put(format!("key-{i:05}"), format!("value-{i:05}"))
                .unwrap();
        }
        s.flush().unwrap();
        let tables_before: usize = s.level_sizes().iter().sum();
        assert!(tables_before > 3);
        let dropped = s.enforce_retention().unwrap();
        assert!(!dropped.is_empty());
        assert!(s.approx_bytes() <= 1_024);
        // Oldest data went first: the newest keys are still readable.
        assert_eq!(s.get(b"key-00299"), Some(b("value-00299")));
        assert_eq!(s.get(b"key-00000"), None, "oldest table must be gone");
        // Ids are unique and were actually removed from the levels.
        let remaining: usize = s.level_sizes().iter().sum();
        assert_eq!(remaining, tables_before - dropped.len());
    }

    #[test]
    fn retention_keepall_drops_nothing() {
        let mut s = small_store();
        for i in 0..200 {
            s.put(format!("k{i}"), "v").unwrap();
        }
        s.flush().unwrap();
        assert!(s.enforce_retention().unwrap().is_empty());
        assert_eq!(s.get(b"k0"), Some(b("v")));
    }

    #[test]
    fn retention_injected_fault_leaves_tables_intact() {
        let inj = FailureInjector::disabled();
        let mut s = LsmStore::open(LsmConfig {
            memtable_bytes: 256,
            level_limit: 100,
            retention: SstRetention::DropByBytes { max_bytes: 512 },
            injector: inj.clone(),
            ..LsmConfig::default()
        })
        .unwrap();
        for i in 0..200 {
            s.put(format!("key-{i:04}"), "vvvvvvvv").unwrap();
        }
        s.flush().unwrap();
        let before: usize = s.level_sizes().iter().sum();
        inj.fail_at(1);
        let err = s.enforce_retention();
        assert!(matches!(err, Err(crate::KvError::Injected("kv.sst-drop"))));
        let after: usize = s.level_sizes().iter().sum();
        assert_eq!(before, after, "crash before the unlink drops nothing");
        // Retrying after the crash converges.
        let dropped = s.enforce_retention().unwrap();
        assert!(!dropped.is_empty());
        assert!(s.approx_bytes() <= 512);
    }

    #[test]
    fn retention_removes_sstable_files_on_disk() {
        let dir = std::env::temp_dir().join(format!(
            "liquid-kv-retention-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut s = LsmStore::open(LsmConfig {
            memtable_bytes: 256,
            level_limit: 100,
            retention: SstRetention::DropByBytes { max_bytes: 768 },
            dir: Some(dir.clone()),
            ..LsmConfig::default()
        })
        .unwrap();
        for i in 0..200 {
            s.put(format!("key-{i:04}"), "payload-payload").unwrap();
        }
        s.flush().unwrap();
        let files = |d: &std::path::Path| {
            std::fs::read_dir(d)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .ends_with(".sst")
                })
                .count()
        };
        let before = files(&dir);
        let dropped = s.enforce_retention().unwrap();
        assert!(!dropped.is_empty());
        assert_eq!(files(&dir), before - dropped.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut s = LsmStore::in_memory();
        s.flush().unwrap();
        assert_eq!(s.stats().flushes, 0);
    }
}
