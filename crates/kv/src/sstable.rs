//! Immutable sorted string tables.
//!
//! A flushed memtable becomes an SSTable: a sorted, de-duplicated run of
//! `(key, value-or-tombstone)` entries plus a bloom filter. Tables are
//! immutable; compaction merges several into one and discards the
//! originals.

use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;

use crate::bloom::Bloom;
use crate::error::KvError;

const MAGIC: u32 = 0x4C51_5354; // "LQST"

/// An immutable sorted table.
#[derive(Debug)]
pub struct SsTable {
    id: u64,
    /// Sorted by key, unique keys. `None` = tombstone.
    entries: Vec<(Bytes, Option<Bytes>)>,
    bloom: Bloom,
    data_bytes: usize,
}

impl SsTable {
    /// Builds a table from sorted, de-duplicated entries.
    ///
    /// # Panics
    /// Panics (debug) if entries are not strictly sorted by key.
    pub fn build(id: u64, entries: Vec<(Bytes, Option<Bytes>)>, bits_per_key: usize) -> Self {
        debug_assert!(
            entries
                .iter()
                .zip(entries.iter().skip(1))
                .all(|(a, b)| a.0 < b.0),
            "SSTable entries must be strictly sorted"
        );
        let mut bloom = Bloom::new(entries.len(), bits_per_key);
        let mut data_bytes = 0;
        for (k, v) in &entries {
            bloom.insert(k);
            data_bytes += k.len() + v.as_ref().map_or(0, |v| v.len()) + 16;
        }
        SsTable {
            id,
            entries,
            bloom,
            data_bytes,
        }
    }

    /// Table identifier (unique per store).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of entries, tombstones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate in-memory size.
    pub fn size_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<&Bytes> {
        self.entries.first().map(|(k, _)| k)
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<&Bytes> {
        self.entries.last().map(|(k, _)| k)
    }

    /// Point lookup. `None` = not in this table; `Some(None)` =
    /// tombstoned here.
    pub fn get(&self, key: &[u8]) -> Option<Option<Bytes>> {
        if !self.bloom.may_contain(key) {
            return None;
        }
        self.entries
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|(_, v)| v.clone())
    }

    /// Whether the bloom filter admits this key (exposed for the bloom
    /// effectiveness tests/benches).
    pub fn bloom_may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(key)
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &(Bytes, Option<Bytes>)> {
        self.entries.iter()
    }

    /// Iterates entries with `start <= key < end` (None bound = open).
    pub fn range<'a>(
        &'a self,
        start: Option<&'a [u8]>,
        end: Option<&'a [u8]>,
    ) -> impl Iterator<Item = &'a (Bytes, Option<Bytes>)> + 'a {
        let lo = match start {
            Some(s) => self.entries.partition_point(|(k, _)| k.as_ref() < s),
            None => 0,
        };
        self.entries
            .get(lo..)
            .unwrap_or_default()
            .iter()
            .take_while(move |(k, _)| end.is_none_or(|e| k.as_ref() < e))
    }

    /// Merges tables (ordered **newest first**) into one sorted entry
    /// list; for duplicate keys the newest wins. With `drop_tombstones`
    /// (bottom-level compaction) tombstones are removed entirely.
    pub fn merge(tables: &[Arc<SsTable>], drop_tombstones: bool) -> Vec<(Bytes, Option<Bytes>)> {
        let mut map = std::collections::BTreeMap::new();
        // Apply oldest first so newer tables overwrite.
        for table in tables.iter().rev() {
            for (k, v) in table.iter() {
                map.insert(k.clone(), v.clone());
            }
        }
        map.into_iter()
            .filter(|(_, v)| !(drop_tombstones && v.is_none()))
            .collect()
    }

    /// Serializes the table (with trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        let bloom = self.bloom.encode();
        let mut out = Vec::with_capacity(32 + bloom.len() + self.data_bytes);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        out.extend_from_slice(&(bloom.len() as u32).to_le_bytes());
        out.extend_from_slice(&bloom);
        for (k, v) in &self.entries {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
            match v {
                Some(v) => {
                    out.push(0);
                    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    out.extend_from_slice(v);
                }
                None => out.push(1),
            }
        }
        let crc = crate::wal::crc32_public(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a table produced by [`encode`](Self::encode).
    pub fn decode(data: &[u8]) -> crate::Result<SsTable> {
        if data.len() < 28 {
            return Err(KvError::Corrupt("sstable too small".into()));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        if crate::wal::crc32_public(body) != le_u32(crc_bytes)? {
            return Err(KvError::Corrupt("sstable crc mismatch".into()));
        }
        let magic = le_u32(field(body, 0, 4)?)?;
        if magic != MAGIC {
            return Err(KvError::Corrupt(format!("bad magic {magic:#x}")));
        }
        let id = le_u64(field(body, 4, 12)?)?;
        let count = le_u64(field(body, 12, 20)?)? as usize;
        let bloom_len = le_u32(field(body, 20, 24)?)? as usize;
        if body.len() < 24 + bloom_len {
            return Err(KvError::Corrupt("bloom truncated".into()));
        }
        let _bloom = &body[24..24 + bloom_len];
        let mut pos = 24 + bloom_len;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let need = |n: usize, pos: usize| -> crate::Result<()> {
                if body.len() < pos + n {
                    Err(KvError::Corrupt("entry truncated".into()))
                } else {
                    Ok(())
                }
            };
            need(4, pos)?;
            let klen = le_u32(&body[pos..pos + 4])? as usize;
            pos += 4;
            need(klen + 1, pos)?;
            let key = Bytes::copy_from_slice(&body[pos..pos + klen]);
            pos += klen;
            let tag = body[pos];
            pos += 1;
            let value = match tag {
                0 => {
                    need(4, pos)?;
                    let vlen = le_u32(&body[pos..pos + 4])? as usize;
                    pos += 4;
                    need(vlen, pos)?;
                    let v = Bytes::copy_from_slice(&body[pos..pos + vlen]);
                    pos += vlen;
                    Some(v)
                }
                1 => None,
                t => return Err(KvError::Corrupt(format!("bad entry tag {t}"))),
            };
            entries.push((key, value));
        }
        // Rebuild the bloom filter rather than trusting the serialized
        // one (it is stored for forward compatibility / external tools).
        Ok(SsTable::build(id, entries, 10))
    }

    /// Writes the encoded table to `path`.
    pub fn write_to(&self, path: &Path) -> crate::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads a table from `path`.
    pub fn read_from(path: &Path) -> crate::Result<SsTable> {
        let data = std::fs::read(path)?;
        SsTable::decode(&data)
    }
}

/// Borrows `body[lo..hi]`, turning a short body into a corruption error
/// instead of a panic — decode runs on bytes that crossed a
/// fault-injected medium, so no slice length can be trusted.
fn field(body: &[u8], lo: usize, hi: usize) -> crate::Result<&[u8]> {
    body.get(lo..hi)
        .ok_or_else(|| KvError::Corrupt(format!("truncated field at {lo}..{hi}")))
}

/// Reads a little-endian u32; a short slice is a corruption error, not
/// a panic — decode runs on bytes that crossed a fault-injected medium.
fn le_u32(bytes: &[u8]) -> crate::Result<u32> {
    match bytes.try_into() {
        Ok(arr) => Ok(u32::from_le_bytes(arr)),
        Err(_) => Err(KvError::Corrupt("truncated u32 field".into())),
    }
}

/// Reads a little-endian u64 with the same contract as [`le_u32`].
fn le_u64(bytes: &[u8]) -> crate::Result<u64> {
    match bytes.try_into() {
        Ok(arr) => Ok(u64::from_le_bytes(arr)),
        Err(_) => Err(KvError::Corrupt("truncated u64 field".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn table(id: u64, pairs: &[(&str, Option<&str>)]) -> SsTable {
        let entries = pairs.iter().map(|(k, v)| (b(k), v.map(b))).collect();
        SsTable::build(id, entries, 10)
    }

    #[test]
    fn get_hits_and_misses() {
        let t = table(1, &[("a", Some("1")), ("c", Some("3")), ("e", None)]);
        assert_eq!(t.get(b"a"), Some(Some(b("1"))));
        assert_eq!(t.get(b"c"), Some(Some(b("3"))));
        assert_eq!(t.get(b"e"), Some(None), "tombstone visible");
        assert_eq!(t.get(b"b"), None);
        assert_eq!(t.get(b"zz"), None);
    }

    #[test]
    fn min_max_and_len() {
        let t = table(1, &[("b", Some("1")), ("d", Some("2"))]);
        assert_eq!(t.min_key().unwrap(), &b("b"));
        assert_eq!(t.max_key().unwrap(), &b("d"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn range_bounds() {
        let t = table(
            1,
            &[
                ("a", Some("1")),
                ("b", Some("2")),
                ("c", Some("3")),
                ("d", Some("4")),
            ],
        );
        let mid: Vec<_> = t
            .range(Some(b"b"), Some(b"d"))
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(mid, vec![b("b"), b("c")]);
        let open: Vec<_> = t.range(None, None).count().to_string().into_bytes();
        assert_eq!(open, b"4");
    }

    #[test]
    fn merge_newest_wins() {
        let newest = Arc::new(table(2, &[("a", Some("new")), ("b", None)]));
        let oldest = Arc::new(table(
            1,
            &[("a", Some("old")), ("b", Some("x")), ("c", Some("1"))],
        ));
        let merged = SsTable::merge(&[newest, oldest], false);
        assert_eq!(
            merged,
            vec![
                (b("a"), Some(b("new"))),
                (b("b"), None),
                (b("c"), Some(b("1"))),
            ]
        );
    }

    #[test]
    fn merge_drops_tombstones_at_bottom() {
        let newest = Arc::new(table(2, &[("a", None)]));
        let oldest = Arc::new(table(1, &[("a", Some("old")), ("b", Some("1"))]));
        let merged = SsTable::merge(&[newest, oldest], true);
        assert_eq!(merged, vec![(b("b"), Some(b("1")))]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = table(
            7,
            &[("alpha", Some("1")), ("beta", None), ("gamma", Some("3"))],
        );
        let back = SsTable::decode(&t.encode()).unwrap();
        assert_eq!(back.id(), 7);
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(b"alpha"), Some(Some(b("1"))));
        assert_eq!(back.get(b"beta"), Some(None));
    }

    #[test]
    fn decode_detects_corruption() {
        let t = table(1, &[("a", Some("1"))]);
        let mut enc = t.encode();
        enc[10] ^= 0xFF;
        assert!(matches!(SsTable::decode(&enc), Err(KvError::Corrupt(_))));
        assert!(SsTable::decode(&enc[..5]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!(
            "liquid-kv-sst-{}-{}.sst",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let t = table(3, &[("k", Some("v"))]);
        t.write_to(&path).unwrap();
        let back = SsTable::read_from(&path).unwrap();
        assert_eq!(back.get(b"k"), Some(Some(b("v"))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bloom_rejects_most_absent_keys() {
        let entries: Vec<_> = (0..1000)
            .map(|i| (Bytes::from(format!("key-{i:05}")), Some(b("v"))))
            .collect();
        let t = SsTable::build(1, entries, 10);
        let admitted = (0..1000)
            .filter(|i| t.bloom_may_contain(format!("no-{i}").as_bytes()))
            .count();
        assert!(admitted < 50, "bloom admitted {admitted} absent keys");
    }

    #[test]
    fn empty_table() {
        let t = SsTable::build(1, vec![], 10);
        assert!(t.is_empty());
        assert_eq!(t.min_key(), None);
        assert_eq!(t.get(b"x"), None);
        let back = SsTable::decode(&t.encode()).unwrap();
        assert!(back.is_empty());
    }
}
