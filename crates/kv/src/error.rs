//! Error type for store operations.

use std::io;

/// Errors surfaced by the LSM store.
#[derive(Debug)]
pub enum KvError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// WAL or SSTable bytes failed validation.
    Corrupt(String),
    /// A fault injector fired at the named operation (simulated crash).
    Injected(&'static str),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "kv I/O error: {e}"),
            KvError::Corrupt(msg) => write!(f, "corrupt kv data: {msg}"),
            KvError::Injected(op) => write!(f, "injected fault at {op}"),
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(KvError::Corrupt("x".into()).to_string().contains('x'));
        let e: KvError = io::Error::other("y").into();
        assert!(e.to_string().contains('y'));
    }
}
