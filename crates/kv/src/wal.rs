//! Write-ahead log.
//!
//! Every mutation is appended here before it is applied to the memtable,
//! so a crash loses nothing that was acknowledged. On open, the WAL is
//! replayed into a fresh memtable; a torn final entry (partial write at
//! crash time) is detected by CRC and discarded.
//!
//! Entry layout (little-endian):
//!
//! ```text
//! +---------+---------+-------+-----------+-----+-----------+-------+
//! | len:u32 | crc:u32 | op:u8 | klen: u32 | key | vlen: u32 | value |
//! +---------+---------+-------+-----------+-----+-----------+-------+
//! ```

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::Bytes;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert/overwrite.
    Put(Bytes, Bytes),
    /// Tombstone.
    Delete(Bytes),
}

enum Backend {
    Mem(Vec<u8>),
    File(File),
}

/// The write-ahead log.
pub struct Wal {
    backend: Backend,
    len: u64,
}

impl Wal {
    /// In-memory WAL (for tests and purely transient stores).
    pub fn memory() -> Self {
        Wal {
            backend: Backend::Mem(Vec::new()),
            len: 0,
        }
    }

    /// Opens (creating if needed) a file WAL and replays any existing
    /// entries.
    pub fn open(path: &Path) -> crate::Result<(Self, Vec<WalOp>)> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false) // existing entries are replayed, not discarded
            .read(true)
            .write(true)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (ops, valid_len) = decode_all(&buf);
        if (valid_len as u64) < buf.len() as u64 {
            // Torn tail from a crash: truncate it away.
            file.set_len(valid_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                backend: Backend::File(file),
                len: valid_len as u64,
            },
            ops,
        ))
    }

    /// Appends one operation.
    pub fn append(&mut self, op: &WalOp) -> crate::Result<()> {
        let entry = encode(op);
        match &mut self.backend {
            Backend::Mem(v) => v.extend_from_slice(&entry),
            Backend::File(f) => f.write_all(&entry)?,
        }
        self.len += entry.len() as u64;
        Ok(())
    }

    /// Appends only the first half of one operation's encoding,
    /// emulating a crash mid-write. The frame fails its CRC on replay,
    /// so recovery truncates it away. After calling this the component
    /// must be treated as crashed: further appends would land after
    /// unrecoverable garbage, exactly as on real hardware.
    pub fn append_torn(&mut self, op: &WalOp) -> crate::Result<()> {
        let entry = encode(op);
        let keep = entry.len() / 2;
        match &mut self.backend {
            Backend::Mem(v) => v.extend_from_slice(&entry[..keep]),
            Backend::File(f) => f.write_all(&entry[..keep])?,
        }
        self.len += keep as u64;
        Ok(())
    }

    /// Flushes buffered bytes to the medium.
    pub fn sync(&mut self) -> crate::Result<()> {
        if let Backend::File(f) = &mut self.backend {
            f.flush()?;
        }
        Ok(())
    }

    /// Discards all entries (called after the memtable is flushed to an
    /// SSTable, making the WAL redundant).
    pub fn truncate(&mut self) -> crate::Result<()> {
        match &mut self.backend {
            Backend::Mem(v) => v.clear(),
            Backend::File(f) => {
                f.set_len(0)?;
                f.seek(SeekFrom::Start(0))?;
            }
        }
        self.len = 0;
        Ok(())
    }

    /// Current size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len
    }

    /// Decodes every valid entry (memory backend; used in tests).
    pub fn replay_memory(&self) -> Vec<WalOp> {
        match &self.backend {
            Backend::Mem(v) => decode_all(v).0,
            Backend::File(..) => Vec::new(),
        }
    }
}

fn encode(op: &WalOp) -> Vec<u8> {
    let (tag, key, value): (u8, &Bytes, Option<&Bytes>) = match op {
        WalOp::Put(k, v) => (0, k, Some(v)),
        WalOp::Delete(k) => (1, k, None),
    };
    let body_len = 4 + 1 + 4 + key.len() + 4 + value.map_or(0, |v| v.len());
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let crc_pos = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    match value {
        Some(v) => {
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        None => out.extend_from_slice(&0u32.to_le_bytes()),
    }
    let crc = crc32(&out[crc_pos + 4..]);
    out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes entries until the data ends or an entry fails validation;
/// returns the ops and the number of valid bytes consumed.
fn decode_all(data: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut pos = 0;
    while pos + 4 <= data.len() {
        // A malformed frame is treated like a torn tail: stop replaying.
        let Ok(len_bytes) = <[u8; 4]>::try_from(&data[pos..pos + 4]) else {
            break;
        };
        let body_len = u32::from_le_bytes(len_bytes) as usize;
        if body_len < 13 || pos + 4 + body_len > data.len() {
            break;
        }
        let body = &data[pos + 4..pos + 4 + body_len];
        let Some(crc_slice) = body.get(0..4) else {
            break;
        };
        let Ok(crc_bytes) = <[u8; 4]>::try_from(crc_slice) else {
            break;
        };
        let stored_crc = u32::from_le_bytes(crc_bytes);
        let Some(payload) = body.get(4..) else {
            break;
        };
        if crc32(payload) != stored_crc {
            break;
        }
        match decode_body(payload) {
            Some(op) => ops.push(op),
            None => break,
        }
        pos += 4 + body_len;
    }
    (ops, pos)
}

fn decode_body(body: &[u8]) -> Option<WalOp> {
    let tag = *body.first()?;
    let klen = u32::from_le_bytes(body.get(1..5)?.try_into().ok()?) as usize;
    if body.len() < 5 + klen + 4 {
        return None;
    }
    let key = Bytes::copy_from_slice(&body[5..5 + klen]);
    let vlen = u32::from_le_bytes(body[5 + klen..9 + klen].try_into().ok()?) as usize;
    if body.len() != 9 + klen + vlen {
        return None;
    }
    let value = Bytes::copy_from_slice(&body[9 + klen..]);
    match tag {
        0 => Some(WalOp::Put(key, value)),
        1 => Some(WalOp::Delete(key)),
        _ => None,
    }
}

/// CRC-32 (IEEE) over `data`; shared with SSTable serialization.
pub fn crc32_public(data: &[u8]) -> u32 {
    crc32(data)
}

fn crc32(data: &[u8]) -> u32 {
    // Reuse the IEEE polynomial; small enough to duplicate rather than
    // create a cross-crate dependency for one function.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "liquid-kv-wal-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    #[test]
    fn memory_roundtrip() {
        let mut w = Wal::memory();
        w.append(&WalOp::Put(b("a"), b("1"))).unwrap();
        w.append(&WalOp::Delete(b("a"))).unwrap();
        let ops = w.replay_memory();
        assert_eq!(ops, vec![WalOp::Put(b("a"), b("1")), WalOp::Delete(b("a"))]);
    }

    #[test]
    fn file_replay_after_reopen() {
        let path = tmp("replay.wal");
        {
            let (mut w, ops) = Wal::open(&path).unwrap();
            assert!(ops.is_empty());
            w.append(&WalOp::Put(b("k"), b("v"))).unwrap();
            w.append(&WalOp::Put(b("k2"), b("v2"))).unwrap();
            w.sync().unwrap();
        }
        let (_, ops) = Wal::open(&path).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1], WalOp::Put(b("k2"), b("v2")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_discarded() {
        let path = tmp("torn.wal");
        {
            let (mut w, _) = Wal::open(&path).unwrap();
            w.append(&WalOp::Put(b("good"), b("1"))).unwrap();
            w.sync().unwrap();
        }
        // Append half an entry by hand.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let full = encode(&WalOp::Put(b("torn"), b("2")));
            f.write_all(&full[..full.len() / 2]).unwrap();
        }
        let (w, ops) = Wal::open(&path).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0], WalOp::Put(b("good"), b("1")));
        // And the file was truncated back to the valid prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), w.size_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_entry_stops_replay() {
        let mut data = encode(&WalOp::Put(b("a"), b("1")));
        let mut second = encode(&WalOp::Put(b("b"), b("2")));
        let n = second.len();
        second[n - 1] ^= 0xFF; // flip a bit in the value
        data.extend_from_slice(&second);
        let (ops, used) = decode_all(&data);
        assert_eq!(ops.len(), 1);
        assert!(used < data.len());
    }

    #[test]
    fn truncate_resets() {
        let mut w = Wal::memory();
        w.append(&WalOp::Put(b("a"), b("1"))).unwrap();
        assert!(w.size_bytes() > 0);
        w.truncate().unwrap();
        assert_eq!(w.size_bytes(), 0);
        assert!(w.replay_memory().is_empty());
    }

    #[test]
    fn empty_values_and_keys_roundtrip() {
        let mut w = Wal::memory();
        w.append(&WalOp::Put(Bytes::new(), Bytes::new())).unwrap();
        w.append(&WalOp::Delete(Bytes::new())).unwrap();
        let ops = w.replay_memory();
        assert_eq!(ops.len(), 2);
    }
}
