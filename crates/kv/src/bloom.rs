//! Bloom filter guarding SSTable reads.
//!
//! A point read consults every table that might hold the key; the bloom
//! filter lets most tables answer "definitely not here" without touching
//! their data. Uses double hashing (two FNV-1a variants) to derive the
//! `k` probe positions, the standard Kirsch–Mitzenmacher construction.

/// A fixed-size bloom filter.
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Vec<u64>,
    num_bits: usize,
    k: u32,
}

impl Bloom {
    /// Builds a filter sized for `expected_items` at roughly
    /// `bits_per_key` bits each (10 gives ~1% false positives).
    pub fn new(expected_items: usize, bits_per_key: usize) -> Self {
        let num_bits = (expected_items.max(1) * bits_per_key.max(1)).max(64);
        let k = ((bits_per_key as f64) * 0.69).round().clamp(1.0, 30.0) as u32;
        Bloom {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            k,
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hashes(key);
        for i in 0..self.k {
            let bit = self.probe(h1, h2, i);
            if let Some(word) = self.bits.get_mut(bit / 64) {
                *word |= 1 << (bit % 64);
            }
        }
    }

    /// Whether the key *might* be present (false positives possible,
    /// false negatives not).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = hashes(key);
        (0..self.k).all(|i| {
            let bit = self.probe(h1, h2, i);
            self.bits
                .get(bit / 64)
                .is_some_and(|word| word & (1 << (bit % 64)) != 0)
        })
    }

    fn probe(&self, h1: u64, h2: u64, i: u32) -> usize {
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.num_bits as u64) as usize
    }

    /// Number of hash probes per key.
    pub fn num_probes(&self) -> u32 {
        self.k
    }

    /// Size of the bit array in bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Serializes to bytes (for on-disk SSTables).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&(self.num_bits as u64).to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from bytes produced by [`encode`](Self::encode).
    pub fn decode(data: &[u8]) -> Option<Bloom> {
        if data.len() < 12 {
            return None;
        }
        let num_bits = u64::from_le_bytes(data[0..8].try_into().ok()?) as usize;
        let k = u32::from_le_bytes(data[8..12].try_into().ok()?);
        let words = num_bits.div_ceil(64);
        if data.len() != 12 + words * 8 {
            return None;
        }
        let mut bits = Vec::with_capacity(words);
        for i in 0..words {
            let start = 12 + i * 8;
            bits.push(u64::from_le_bytes(data[start..start + 8].try_into().ok()?));
        }
        Some(Bloom { bits, num_bits, k })
    }
}

fn hashes(key: &[u8]) -> (u64, u64) {
    (
        fnv1a(key, 0xcbf2_9ce4_8422_2325),
        fnv1a(key, 0x9747_b28c_8421_ffff),
    )
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Avalanche so low-entropy keys spread across the bit array.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::new(1000, 10);
        for i in 0..1000 {
            b.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..1000 {
            assert!(b.may_contain(format!("key-{i}").as_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut b = Bloom::new(1000, 10);
        for i in 0..1000 {
            b.insert(format!("key-{i}").as_bytes());
        }
        let fp = (0..10_000)
            .filter(|i| b.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        // Theoretical ~1%; allow up to 5%.
        assert!(fp < 500, "false positive count too high: {fp}");
    }

    #[test]
    fn empty_filter_contains_nothing_much() {
        let b = Bloom::new(100, 10);
        let hits = (0..1000)
            .filter(|i| b.may_contain(format!("k{i}").as_bytes()))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut b = Bloom::new(64, 8);
        for i in 0..64 {
            b.insert(&[i as u8]);
        }
        let enc = b.encode();
        let back = Bloom::decode(&enc).unwrap();
        assert_eq!(back.num_bits(), b.num_bits());
        assert_eq!(back.num_probes(), b.num_probes());
        for i in 0..64 {
            assert!(back.may_contain(&[i as u8]));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Bloom::decode(&[1, 2, 3]).is_none());
        assert!(Bloom::decode(&[0u8; 11]).is_none());
        let mut good = Bloom::new(10, 8).encode();
        good.pop();
        assert!(Bloom::decode(&good).is_none());
    }

    #[test]
    fn zero_sized_construction_is_safe() {
        let mut b = Bloom::new(0, 0);
        b.insert(b"k");
        assert!(b.may_contain(b"k"));
    }
}
