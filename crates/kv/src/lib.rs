//! Embedded LSM-tree key-value store.
//!
//! The paper's processing layer keeps task state *off-heap* in RocksDB
//! (§4.4) so stateful jobs are not throttled by garbage collection and
//! can hold state larger than memory. This crate is the workspace's
//! RocksDB stand-in: a log-structured merge tree with
//!
//! * an in-memory **memtable** ([`memtable`]) absorbing writes;
//! * a **write-ahead log** ([`wal`]) making those writes durable before
//!   they are acknowledged;
//! * immutable sorted **SSTables** ([`sstable`]) produced when the
//!   memtable fills, each guarded by a **bloom filter** ([`bloom`]);
//! * size-tiered **compaction** merging tables level by level;
//! * whole-table **retention** ([`store::SstRetention`]): expired
//!   SSTables are dropped whole from the bottom level, an O(1) unlink
//!   per table — the same drop shape as the log's segment retention;
//! * point reads, ordered range scans and consistent **snapshots**
//!   ([`store`]).
//!
//! The store is deliberately API-compatible with what the processing
//! layer needs from RocksDB: `get`/`put`/`delete`/`range`, plus
//! `flush` and restart recovery.

#![forbid(unsafe_code)]

pub mod bloom;
pub mod error;
pub mod memtable;
pub mod sstable;
pub mod store;
pub mod wal;

pub use error::KvError;
pub use store::{LsmConfig, LsmStore, Snapshot, SstRetention};

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, KvError>;
