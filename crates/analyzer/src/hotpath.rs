//! Lint **hot-copy**: interprocedural zero-copy taint over the
//! batched produce/fetch hot path.
//!
//! The ≥5M msg/s arc (ROADMAP item 1) rests on an invariant PR 6
//! established by construction: a message's payload bytes are copied
//! exactly once — into the [`BatchBuilder`] arena at produce time —
//! and every later hop (append, replicate, fetch, deliver) shares them
//! as ref-counted `Bytes` slices. Nothing in the type system enforces
//! that; one `to_vec()` in a produce-path callee silently multiplies
//! per-message work. This pass proves the invariant per commit:
//!
//! 1. **Roots.** The hot path's dynamic extent is the call-graph
//!    closure from the named entry points in [`HOT_ROOTS`]
//!    (`Cluster::produce_batch`/`fetch_batch`,
//!    `Log::append_record_batch`, replication `catch_up`,
//!    `Consumer::poll_batches`), via
//!    [`CallGraph::reach_from_named`].
//! 2. **Taint.** Within each reachable function, payload carriers are
//!    seeded *by name* ([`PAYLOAD_NAMES`]: the identifiers the
//!    workspace reserves for payload bytes — `value`, `key`, `arena`,
//!    `records`, `chunk`, …) and closed over assignments
//!    ([`Op::Assign`]), so `let v = batch.records()` taints `v`
//!    through the accessor's name. Taint crosses calls through a
//!    fixpoint over per-function *summaries*: a call whose arguments
//!    mention a tainted name marks the callee's parameters tainted and
//!    re-queues it — no inlining, so the analysis is linear in the
//!    summary lattice, not exponential in path count.
//! 3. **Sinks.** A deep copy of a tainted carrier —
//!    `.to_vec()`/`.to_owned()`, `extend_from_slice`,
//!    `copy_from_slice` (method or `Bytes::`), `Vec::from` — is a
//!    finding, carrying the full root→copy call-chain witness
//!    (`file:line` per hop) so the reviewer can see *which* hot path
//!    pays for the copy.
//!
//! `.clone()` is deliberately **not** a sink: on payload carriers it
//! is a `Bytes` refcount bump — the sanctioned zero-copy share — and
//! the conversions that would make it a deep copy (`to_vec` & co.)
//! are already sinks. The sanctioned produce-time copy
//! (`BatchBuilder::push` into the arena) sits *upstream* of every
//! root, so it is outside the closure by construction.
//!
//! [`BatchBuilder`]: ../../liquid_log/batch/struct.BatchBuilder.html
//! [`CallGraph::reach_from_named`]: crate::callgraph::CallGraph::reach_from_named
//! [`Op::Assign`]: crate::cfg::Op::Assign

use std::collections::{BTreeSet, HashMap};

use crate::callgraph::{CallGraph, CallSite};
use crate::cfg::{self, Op};
use crate::rules::for_each_fn;
use crate::{Finding, SourceData};

/// The hot-path entry points: taint propagates through everything the
/// call graph proves reachable from a non-test function with one of
/// these names.
pub const HOT_ROOTS: &[&str] = &[
    "produce_batch",
    "fetch_batch",
    "append_record_batch",
    "catch_up",
    "poll_batches",
];

/// Identifiers the workspace reserves for payload-byte carriers:
/// `Record` fields (`key`, `value`), the builder arena, batch/record
/// collections, and the wire-format locals in `record.rs`/`segment.rs`
/// (`chunk`, `body`, `rest`, `data`). Any mention of one of these
/// names inside the hot closure is a taint seed.
pub const PAYLOAD_NAMES: &[&str] = &[
    "value", "key", "payload", "arena", "records", "batch", "bytes", "chunk", "body", "rest",
    "data",
];

fn is_payload(name: &str) -> bool {
    PAYLOAD_NAMES.contains(&name)
}

/// One call op lifted out of a function's CFG.
struct CallOp {
    name: String,
    arity: usize,
    is_method: bool,
    qual: Option<String>,
    recv_names: Vec<String>,
    arg_names: Vec<String>,
    line: u32,
}

/// Per-function summary: the raw material for the taint fixpoint.
struct FnInfo {
    /// Index into `graph.fns`.
    id: usize,
    /// Parameter binding names (taint targets when a caller passes
    /// tainted arguments).
    params: Vec<String>,
    /// `(to, froms)` assignment pairs for the local closure.
    assigns: Vec<(String, Vec<String>)>,
    /// Every call op, in CFG order.
    calls: Vec<CallOp>,
}

/// Whether a call op is a deep-copy sink. Returns the display name of
/// the copy plus the names of its *source* operand: the receiver for
/// `src.to_vec()`-shaped sinks, the arguments for
/// `dst.extend_from_slice(&src)`-shaped ones — a tainted destination
/// alone (header bytes appended to a payload-bearing buffer) is not a
/// payload copy.
fn copy_kind(c: &CallOp) -> Option<(String, &[String])> {
    if c.is_method {
        return match c.name.as_str() {
            "to_vec" | "to_owned" => Some((format!(".{}()", c.name), &c.recv_names[..])),
            "extend_from_slice" | "copy_from_slice" => {
                Some((format!(".{}()", c.name), &c.arg_names[..]))
            }
            _ => None,
        };
    }
    match (c.qual.as_deref(), c.name.as_str()) {
        (Some("Bytes"), "copy_from_slice") => {
            Some(("Bytes::copy_from_slice".to_string(), &c.arg_names[..]))
        }
        (Some("Vec"), "from") => Some(("Vec::from".to_string(), &c.arg_names[..])),
        _ => None,
    }
}

/// The flow-insensitive taint closure inside one function: seeds are
/// the payload names (checked by predicate, so they need no set entry)
/// plus — when the interprocedural fixpoint marked this function's
/// parameters tainted — every parameter; the closure adds each binding
/// whose initializer mentions a tainted name.
fn local_taint(info: &FnInfo, params_tainted: bool) -> BTreeSet<String> {
    let mut extra: BTreeSet<String> = BTreeSet::new();
    if params_tainted {
        extra.extend(info.params.iter().cloned());
    }
    loop {
        let mut changed = false;
        for (to, froms) in &info.assigns {
            if !extra.contains(to) && froms.iter().any(|n| is_payload(n) || extra.contains(n)) {
                extra.insert(to.clone());
                changed = true;
            }
        }
        if !changed {
            return extra;
        }
    }
}

/// Runs the pass over the whole workspace; findings are appended to
/// `out` (the framework routes them through per-file `lint:allow`
/// suppression like any other lint).
pub fn hot_copy(graph: &CallGraph, files: &[SourceData], out: &mut Vec<Finding>) {
    let reach = graph.reach_from_named(HOT_ROOTS);
    if !reach.reachable.iter().any(|&r| r) {
        return; // no hot roots in this tree (small fixture workspaces)
    }

    // (file, decl line, name) → graph node, to pair each AST function
    // with its call-graph identity.
    let mut by_site: HashMap<(&str, u32, &str), usize> = HashMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        by_site.insert((f.file.as_str(), f.line, f.name.as_str()), i);
    }

    let mut infos: Vec<FnInfo> = Vec::new();
    for file in files {
        let Some(ast) = &file.ast else { continue };
        for_each_fn(&ast.items, &mut |f| {
            let Some(&id) = by_site.get(&(file.rel.as_str(), f.line, f.name.as_str())) else {
                return;
            };
            if !reach.reachable[id] || graph.fns[id].in_test || f.body.is_none() {
                return;
            }
            let mut params = Vec::new();
            for p in &f.params {
                p.pat.bound_names(&mut params);
            }
            let g = cfg::lower_fn(f);
            let mut assigns = Vec::new();
            let mut calls = Vec::new();
            for blk in &g.blocks {
                for op in &blk.ops {
                    match op {
                        Op::Assign { to, froms, .. } => {
                            assigns.push((to.clone(), froms.clone()));
                        }
                        Op::Call {
                            name,
                            arity,
                            is_method,
                            qual,
                            recv_names,
                            arg_names,
                            line,
                        } => calls.push(CallOp {
                            name: name.clone(),
                            arity: *arity,
                            is_method: *is_method,
                            qual: qual.clone(),
                            recv_names: recv_names.clone(),
                            arg_names: arg_names.clone(),
                            line: *line,
                        }),
                        _ => {}
                    }
                }
            }
            infos.push(FnInfo {
                id,
                params,
                assigns,
                calls,
            });
        });
    }

    // Interprocedural parameter-taint fixpoint over summaries: a call
    // whose argument names mention a tainted carrier taints the
    // callee's parameters. Monotone (flags only flip false→true), so
    // it terminates in at most |fns| rounds.
    let mut param_taint = vec![false; graph.fns.len()];
    loop {
        let mut changed = false;
        for info in &infos {
            let local = local_taint(info, param_taint[info.id]);
            for call in &info.calls {
                if !call
                    .recv_names
                    .iter()
                    .chain(&call.arg_names)
                    .any(|n| is_payload(n) || local.contains(n))
                {
                    continue;
                }
                let site = CallSite {
                    name: call.name.clone(),
                    arity: call.arity,
                    is_method: call.is_method,
                    qual: call.qual.clone(),
                    line: call.line,
                };
                for t in graph.resolve(info.id, &site) {
                    if reach.reachable[t] && graph.fns[t].arity > 0 && !param_taint[t] {
                        param_taint[t] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Sink detection, with the root→copy witness per finding.
    for info in &infos {
        let local = local_taint(info, param_taint[info.id]);
        for call in &info.calls {
            let Some((what, sources)) = copy_kind(call) else {
                continue;
            };
            let Some(carrier) = sources
                .iter()
                .find(|n| is_payload(n) || local.contains(n.as_str()))
            else {
                continue;
            };
            out.push(Finding {
                file: graph.fns[info.id].file.clone(),
                line: call.line,
                lint: "hot-copy",
                message: format!(
                    "`{what}` deep-copies payload bytes flowing through `{carrier}` on the \
                     batched hot path — share the existing buffer with Bytes::slice (refcount) \
                     or move the copy off the hot path (reached via: {})",
                    graph.witness(&reach, info.id)
                ),
            });
        }
    }
}
