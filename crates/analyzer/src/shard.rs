//! Lint **shard**: interprocedural lock-shardability classification of
//! every ranked lockdep guard, plus the machine-readable report behind
//! `target/analysis/shardability.json`.
//!
//! The lock-cost pass (PR 7) prices critical sections; this pass asks
//! the follow-up question ROADMAP items 1 and 4 hinge on: *could this
//! guard be split into per-partition shards?* A critical section is
//! shardable when every access it performs is keyed by a single
//! partition identity flowing in from the guard's entry point — then
//! one coarse lock can become N independent ones and producers on
//! different partitions stop serializing. The pass classifies each
//! ranked acquire site as:
//!
//! * **partition-local** — at least one access is provably keyed by a
//!   partition identity ([`PARTITION_KEY_NAMES`]: `tp`, `partition`,
//!   …; closed over assignments and propagated through calls by the
//!   same parameter-taint fixpoint hot-copy uses for payload bytes),
//!   and *no* access reaches a cross-partition collection.
//! * **cross-partition** — some access (direct, or transitively
//!   through a callee) touches a cross-partition collection
//!   ([`CROSS_COLLECTIONS`]: the `topics`/`brokers` maps of the
//!   cluster state) *without* a partition key in the same expression.
//!   A keyed access into a global map (`st.topics.get_mut(&tp.topic)`)
//!   is partition-local evidence, not cross — that is exactly the
//!   shape a shard lookup compiles to.
//! * **unknown** — neither kind of evidence: nothing provably keyed,
//!   so the pass stays conservative and does not license a split.
//!
//! Every verdict carries **witness access chains** (`file:line` per
//! hop, callee evidence prefixed with the call path), so the report is
//! an auditable argument, not a score. Lint findings fire only for
//! guards that are *shardable-but-coarse*: in the hot closure
//! ([`HOT_ROOTS`]), exclusively acquired (`.lock()`/`.write()`),
//! proven partition-local, and not already one of the per-partition
//! shard ranks ([`PARTITION_SHARDED_RANKS`]) — the analyzer-approved
//! work-list for the next lock split.
//!
//! [`HOT_ROOTS`]: crate::hotpath::HOT_ROOTS

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::callgraph::{CallGraph, CallSite};
use crate::cfg::{self, Cfg, Op};
use crate::dataflow;
use crate::hotpath::HOT_ROOTS;
use crate::rules;
use crate::{Context, Finding, SourceData};

/// Identifiers the workspace reserves for partition identity: the
/// [`TopicPartition`] bindings and the partition-index locals. Any
/// mention of one of these inside a critical section is
/// partition-local evidence.
///
/// [`TopicPartition`]: ../../liquid_messaging/struct.TopicPartition.html
pub const PARTITION_KEY_NAMES: &[&str] = &[
    "tp",
    "partition",
    "partition_id",
    "partition_index",
    "topic_partition",
];

/// Field names of the cluster-wide collections: state that by
/// definition spans partitions. Reaching one of these *without* a
/// partition key in the same expression pins the guard cross-partition.
pub const CROSS_COLLECTIONS: &[&str] = &["topics", "brokers"];

/// Ranks that already are per-partition lock shards: proven
/// partition-local by construction, so the shardable-but-coarse
/// finding never re-fires on them. `log.pagecache` qualifies because
/// every `Log` instance owns its cache mutex and logs are per
/// partition *replica* — finer than a per-partition shard.
/// `log.readcache` is the segment-read cache, sharded by segment id at
/// construction — each shard's entry map sits behind its own mutex.
pub const PARTITION_SHARDED_RANKS: &[&str] = &[
    "partition.state",
    "log.pagecache",
    "offsets.shard",
    "log.readcache",
];

fn is_partition_key(name: &str) -> bool {
    PARTITION_KEY_NAMES.contains(&name)
}

fn is_cross_collection(name: &str) -> bool {
    CROSS_COLLECTIONS.contains(&name)
}

/// Shardability verdict for one guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Every reached access keyed by one partition identity.
    PartitionLocal,
    /// Reaches a cross-partition collection unkeyed.
    CrossPartition,
    /// No evidence either way; conservative default.
    Unknown,
}

impl Verdict {
    /// The report/JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::PartitionLocal => "partition-local",
            Verdict::CrossPartition => "cross-partition",
            Verdict::Unknown => "unknown",
        }
    }
}

/// One witness access: the evidence a verdict rests on.
#[derive(Debug, Clone)]
pub struct WitnessAccess {
    /// `partition-key` or `cross-collection`.
    pub kind: &'static str,
    /// What was accessed (`` `tp` ``, `` `topics` ``).
    pub access: String,
    /// `file:line` chain from the guard-holding function to the
    /// access, one `qualified (file:line)` hop per call.
    pub chain: String,
}

/// One ranked-guard acquire site with its shardability verdict.
#[derive(Debug, Clone)]
pub struct GuardVerdict {
    /// Rank name (`cluster.state`, …).
    pub rank: &'static str,
    /// Rank order from `sim::lockdep::RANKS`.
    pub order: u32,
    /// Workspace-relative file of the acquire site.
    pub file: String,
    /// 1-based line of the acquire site.
    pub line: u32,
    /// Qualified name of the function holding the guard.
    pub function: String,
    /// Acquisition method (`lock`, `read`, `write`).
    pub method: String,
    /// Whether the holding function is in the hot-path closure.
    pub hot: bool,
    /// The classification.
    pub verdict: Verdict,
    /// The accesses the verdict rests on (capped, deterministic).
    pub witness: Vec<WitnessAccess>,
}

/// The shardability report: every ranked-guard acquire site in the
/// workspace with its verdict and witnesses.
#[derive(Debug, Default)]
pub struct ShardReport {
    /// Per-site verdicts, sorted partition-local first, then by rank
    /// order (descending), file, line — fully deterministic.
    pub guards: Vec<GuardVerdict>,
}

impl ShardReport {
    /// The set of rank names with at least one classified acquire
    /// site. The drift test holds this against `sim::lockdep::RANKS`,
    /// [`rules::LOCK_FIELDS`] and the lock-cost inventory, so a lock
    /// added without a shardability verdict fails the build.
    pub fn inventory(&self) -> BTreeSet<&'static str> {
        self.guards.iter().map(|g| g.rank).collect()
    }

    /// `(rank, file, line)` of every classified site — compared 1:1
    /// with the lock-cost guard table by the drift test.
    pub fn sites(&self) -> BTreeSet<(&'static str, &str, u32)> {
        self.guards
            .iter()
            .map(|g| (g.rank, g.file.as_str(), g.line))
            .collect()
    }

    /// Renders the `shardability/v1` JSON document (hand-rolled — the
    /// build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"shardability/v1\",\"guards\":[");
        for (i, g) in self.guards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let witness = g
                .witness
                .iter()
                .map(|w| {
                    format!(
                        "{{\"kind\":\"{}\",\"access\":\"{}\",\"chain\":\"{}\"}}",
                        esc(w.kind),
                        esc(&w.access),
                        esc(&w.chain)
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"rank\":\"{}\",\"order\":{},\"file\":\"{}\",\"line\":{},\
                 \"function\":\"{}\",\"method\":\"{}\",\"hot\":{},\
                 \"verdict\":\"{}\",\"witness\":[{witness}]}}",
                esc(g.rank),
                g.order,
                esc(&g.file),
                g.line,
                esc(&g.function),
                esc(&g.method),
                g.hot,
                g.verdict.as_str()
            ));
        }
        out.push_str("],\"ranks\":[");
        // Per-rank aggregation: the sharding work-list at a glance. A
        // rank is partition-local only when *every* site is.
        let mut totals: BTreeMap<&'static str, (u32, u32, u32, u32, u32)> = BTreeMap::new();
        for g in &self.guards {
            let entry = totals.entry(g.rank).or_insert((g.order, 0, 0, 0, 0));
            entry.1 += 1;
            match g.verdict {
                Verdict::PartitionLocal => entry.2 += 1,
                Verdict::CrossPartition => entry.3 += 1,
                Verdict::Unknown => entry.4 += 1,
            }
        }
        let mut ranks: Vec<_> = totals.into_iter().collect();
        ranks.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
        for (i, (rank, (order, sites, local, cross, unknown))) in ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let verdict = if *cross > 0 {
                "cross-partition"
            } else if *unknown > 0 {
                "unknown"
            } else {
                "partition-local"
            };
            out.push_str(&format!(
                "{{\"rank\":\"{}\",\"order\":{order},\"sites\":{sites},\"local\":{local},\
                 \"cross\":{cross},\"unknown\":{unknown},\"verdict\":\"{verdict}\"}}",
                esc(rank)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// RFC 8259 string escape (subset: the characters our identifiers and
/// paths can contain).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Cap on witness entries per guard: enough to audit, small enough to
/// keep the report and its CI diff readable.
const WITNESS_CAP: usize = 4;

/// Cap on the hops of a callee-carried witness chain.
const CHAIN_CAP: usize = 6;

/// One function body prepared for classification.
struct FnBody {
    /// Index into `graph.fns`.
    id: usize,
    /// Workspace-relative file.
    rel: String,
    cfg: Cfg,
    /// `(rank, order)` per acquire site, `None` for unranked.
    site_rank: Vec<Option<(&'static str, u32)>>,
    /// Parameter binding names (partition-key taint targets).
    params: Vec<String>,
}

/// The identifier-ish names an op mentions, with its source line.
/// `Mention` has no line and [`Op::LenObserve`] is a keyed point
/// lookup (`.get()`/`.contains_key()` &co.), so neither contributes
/// evidence; everything interesting surfaces as the enclosing
/// `Assign`/`Call`/`Arith`.
fn op_names(op: &Op) -> Option<(Vec<&str>, u32)> {
    match op {
        Op::Assign { froms, line, .. } => Some((froms.iter().map(String::as_str).collect(), *line)),
        Op::Call {
            recv_names,
            arg_names,
            line,
            ..
        } => Some((
            recv_names
                .iter()
                .chain(arg_names)
                .map(String::as_str)
                .collect(),
            *line,
        )),
        Op::Arith { names, line, .. } => Some((names.iter().map(String::as_str).collect(), *line)),
        Op::Index { recv, line, .. } => Some((recv.split('.').collect(), *line)),
        _ => None,
    }
}

/// The flow-insensitive partition-key closure inside one function:
/// seeds are the key names (checked by predicate) plus — when the
/// interprocedural fixpoint marked this function's parameters tainted
/// — every parameter; the closure adds each binding whose initializer
/// mentions a keyed name.
fn local_keys(body: &FnBody, params_tainted: bool) -> BTreeSet<String> {
    let mut extra: BTreeSet<String> = BTreeSet::new();
    if params_tainted {
        extra.extend(body.params.iter().cloned());
    }
    loop {
        let mut changed = false;
        for blk in &body.cfg.blocks {
            for op in &blk.ops {
                if let Op::Assign { to, froms, .. } = op {
                    if !extra.contains(to)
                        && froms
                            .iter()
                            .any(|n| is_partition_key(n) || extra.contains(n))
                    {
                        extra.insert(to.clone());
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return extra;
        }
    }
}

/// A function's cross-partition evidence: the access plus the
/// `file:line` hop chain leading to it.
#[derive(Debug, Clone)]
struct CrossWitness {
    access: String,
    chain: Vec<String>,
}

/// Runs the pass: appends lint findings to `out` and returns the full
/// shardability report (empty when the tree has no rank table).
pub fn shard(
    ctx: &Context,
    graph: &CallGraph,
    files: &[SourceData],
    out: &mut Vec<Finding>,
) -> ShardReport {
    let Some(ranks) = &ctx.ranks else {
        return ShardReport::default();
    };
    let order_of = |rank: &str| {
        ranks
            .entries
            .iter()
            .find(|(n, _)| n == rank)
            .map(|(_, o)| *o)
    };

    let mut by_site: HashMap<(&str, u32, &str), usize> = HashMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        by_site.insert((f.file.as_str(), f.line, f.name.as_str()), i);
    }

    // Lower every non-test function once.
    let mut bodies: Vec<FnBody> = Vec::new();
    for file in files {
        let Some(ast) = &file.ast else { continue };
        let fields = rules::ranked_fields(&file.rel);
        rules::for_each_fn(&ast.items, &mut |f| {
            let Some(&id) = by_site.get(&(file.rel.as_str(), f.line, f.name.as_str())) else {
                return;
            };
            if graph.fns[id].in_test || f.body.is_none() {
                return;
            }
            let mut params = Vec::new();
            for p in &f.params {
                p.pat.bound_names(&mut params);
            }
            let g = cfg::lower_fn(f);
            let site_rank = rules::site_ranks(&g, &fields, &order_of);
            bodies.push(FnBody {
                id,
                rel: file.rel.clone(),
                cfg: g,
                site_rank,
                params,
            });
        });
    }

    // Phase 1: interprocedural partition-key taint — the same
    // parameter-taint fixpoint hot-copy runs for payload bytes, here
    // seeded by the partition identity names. Monotone (flags only
    // flip false→true), so it terminates in at most |fns| rounds.
    let mut key_taint = vec![false; graph.fns.len()];
    loop {
        let mut changed = false;
        for body in &bodies {
            let keys = local_keys(body, key_taint[body.id]);
            for blk in &body.cfg.blocks {
                for op in &blk.ops {
                    let Op::Call {
                        name,
                        arity,
                        is_method,
                        qual,
                        recv_names,
                        arg_names,
                        line,
                    } = op
                    else {
                        continue;
                    };
                    if !recv_names
                        .iter()
                        .chain(arg_names)
                        .any(|n| is_partition_key(n) || keys.contains(n))
                    {
                        continue;
                    }
                    let site = CallSite {
                        name: name.clone(),
                        arity: *arity,
                        is_method: *is_method,
                        qual: qual.clone(),
                        line: *line,
                    };
                    for t in graph.resolve(body.id, &site) {
                        if graph.fns[t].arity > 0 && !key_taint[t] {
                            key_taint[t] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: which functions reach a cross-partition collection
    // unkeyed? Direct evidence first, then a fixpoint that propagates
    // a callee's witness up through call sites that pass no partition
    // key (a keyed call site *is* the shard-lookup shape, so it does
    // not inherit the callee's cross evidence).
    let mut crossy: Vec<Option<CrossWitness>> = vec![None; graph.fns.len()];
    for body in &bodies {
        if crossy[body.id].is_some() {
            continue;
        }
        let keys = local_keys(body, key_taint[body.id]);
        'body: for blk in &body.cfg.blocks {
            for op in &blk.ops {
                let Some((names, line)) = op_names(op) else {
                    continue;
                };
                if names
                    .iter()
                    .any(|n| is_partition_key(n) || keys.contains(*n))
                {
                    continue;
                }
                if let Some(hit) = names.iter().find(|n| is_cross_collection(n)) {
                    crossy[body.id] = Some(CrossWitness {
                        access: format!("`{hit}`"),
                        chain: vec![hop(graph, body, line)],
                    });
                    break 'body;
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for body in &bodies {
            if crossy[body.id].is_some() {
                continue;
            }
            let keys = local_keys(body, key_taint[body.id]);
            'calls: for blk in &body.cfg.blocks {
                for op in &blk.ops {
                    let Op::Call {
                        name,
                        arity,
                        is_method,
                        qual,
                        recv_names,
                        arg_names,
                        line,
                    } = op
                    else {
                        continue;
                    };
                    if recv_names
                        .iter()
                        .chain(arg_names)
                        .any(|n| is_partition_key(n) || keys.contains(n))
                    {
                        continue;
                    }
                    let site = CallSite {
                        name: name.clone(),
                        arity: *arity,
                        is_method: *is_method,
                        qual: qual.clone(),
                        line: *line,
                    };
                    for t in graph.resolve(body.id, &site) {
                        let Some(w) = &crossy[t] else { continue };
                        if w.chain.len() >= CHAIN_CAP {
                            continue;
                        }
                        let mut chain = vec![hop(graph, body, *line)];
                        chain.extend(w.chain.iter().cloned());
                        crossy[body.id] = Some(CrossWitness {
                            access: w.access.clone(),
                            chain,
                        });
                        changed = true;
                        break 'calls;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 3: per-guard classification via the HeldLocks replay.
    let reach = graph.reach_from_named(HOT_ROOTS);
    let mut report = ShardReport::default();
    for body in &bodies {
        if !body.site_rank.iter().any(Option::is_some) {
            continue;
        }
        let keys = local_keys(body, key_taint[body.id]);
        let analysis = rules::HeldLocks {
            acquires: &body.cfg.acquires,
        };
        let held = dataflow::solve(&body.cfg, &analysis);
        let nsites = body.cfg.acquires.len();
        let mut local_ev: Vec<Vec<WitnessAccess>> = vec![Vec::new(); nsites];
        let mut cross_ev: Vec<Vec<WitnessAccess>> = vec![Vec::new(); nsites];
        for blk in 0..body.cfg.blocks.len() {
            dataflow::walk_ops(&body.cfg, &analysis, &held, blk, |_, op, live| {
                if live.is_empty() {
                    return;
                }
                let Some((names, line)) = op_names(op) else {
                    return;
                };
                let keyed = names
                    .iter()
                    .find(|n| is_partition_key(n) || keys.contains(**n));
                let mut evidence: Option<(bool, WitnessAccess)> = None;
                if let Some(k) = keyed {
                    evidence = Some((
                        true,
                        WitnessAccess {
                            kind: "partition-key",
                            access: format!("`{k}`"),
                            chain: hop(graph, body, line),
                        },
                    ));
                } else if let Some(c) = names.iter().find(|n| is_cross_collection(n)) {
                    evidence = Some((
                        false,
                        WitnessAccess {
                            kind: "cross-collection",
                            access: format!("`{c}`"),
                            chain: hop(graph, body, line),
                        },
                    ));
                } else if let Op::Call {
                    name,
                    arity,
                    is_method,
                    qual,
                    ..
                } = op
                {
                    // Unkeyed call: inherit the callee's transitive
                    // cross evidence, if any.
                    let site = CallSite {
                        name: name.clone(),
                        arity: *arity,
                        is_method: *is_method,
                        qual: qual.clone(),
                        line,
                    };
                    for t in graph.resolve(body.id, &site) {
                        if let Some(w) = &crossy[t] {
                            let mut chain = vec![hop(graph, body, line)];
                            chain.extend(w.chain.iter().cloned());
                            evidence = Some((
                                false,
                                WitnessAccess {
                                    kind: "cross-collection",
                                    access: w.access.clone(),
                                    chain: chain.join(" → "),
                                },
                            ));
                            break;
                        }
                    }
                }
                let Some((is_local, w)) = evidence else {
                    return;
                };
                for &h in live.iter() {
                    if body.site_rank[h].is_none() {
                        continue;
                    }
                    let bucket = if is_local {
                        &mut local_ev[h]
                    } else {
                        &mut cross_ev[h]
                    };
                    if bucket.len() < WITNESS_CAP {
                        bucket.push(w.clone());
                    }
                }
            });
        }
        for (i, site) in body.cfg.acquires.iter().enumerate() {
            let Some((rank, order)) = body.site_rank[i] else {
                continue;
            };
            let (verdict, witness) = if !cross_ev[i].is_empty() {
                (Verdict::CrossPartition, cross_ev[i].clone())
            } else if !local_ev[i].is_empty() {
                (Verdict::PartitionLocal, local_ev[i].clone())
            } else {
                (Verdict::Unknown, Vec::new())
            };
            report.guards.push(GuardVerdict {
                rank,
                order,
                file: body.rel.clone(),
                line: site.line,
                function: graph.fns[body.id].qualified(),
                method: site.method.clone(),
                hot: reach.reachable[body.id],
                verdict,
                witness,
            });
        }
    }
    report.guards.sort_by(|a, b| {
        a.verdict
            .cmp(&b.verdict)
            .then(b.order.cmp(&a.order))
            .then(a.file.cmp(&b.file))
            .then(a.line.cmp(&b.line))
    });

    // Findings: shardable-but-coarse guards — hot, exclusive, proven
    // partition-local, and not already a per-partition shard rank.
    for g in &report.guards {
        if !g.hot
            || g.verdict != Verdict::PartitionLocal
            || g.method == "read"
            || PARTITION_SHARDED_RANKS.contains(&g.rank)
        {
            continue;
        }
        let accesses = g
            .witness
            .iter()
            .map(|w| w.access.as_str())
            .collect::<Vec<_>>()
            .join(", ");
        // The holding function's hot-root witness mirrors hot-copy's.
        let via = {
            let body = report_body_witness(graph, &reach, &g.function);
            body.unwrap_or_else(|| g.function.clone())
        };
        out.push(Finding {
            file: g.file.clone(),
            line: g.line,
            lint: "shard",
            message: format!(
                "exclusive hot-path critical section of \"{}\" (order {}, .{}()) touches only \
                 partition-local state (keyed by {accesses}) — split this lock into \
                 per-partition shards with a dedicated rank in sim::lockdep::RANKS (full \
                 verdicts: target/analysis/shardability.json) (reached via: {via})",
                g.rank, g.order, g.method,
            ),
        });
    }
    report
}

/// One witness-chain hop: `qualified (file:line)`.
fn hop(graph: &CallGraph, body: &FnBody, line: u32) -> String {
    format!("{} ({}:{line})", graph.fns[body.id].qualified(), body.rel)
}

/// The hot-root call-chain witness for the function with the given
/// qualified name (there is exactly one per guard by construction).
fn report_body_witness(
    graph: &CallGraph,
    reach: &crate::callgraph::Reachability,
    qualified: &str,
) -> Option<String> {
    let id = graph.fns.iter().position(|f| f.qualified() == qualified)?;
    if !reach.reachable[id] {
        return None;
    }
    Some(graph.witness(reach, id))
}
