//! A small hand-rolled token-level Rust lexer.
//!
//! The build environment has no network registry, so the analyzer
//! cannot depend on `syn`/`proc-macro2`. The lints here only need a
//! faithful token stream — identifiers, literals, punctuation — with
//! comments and strings handled correctly (a `panic!` inside a string
//! literal or a doc comment must not trip a lint). Parsing stays
//! token-level; structure (items, bodies, `#[cfg(test)]` regions) is
//! recovered by brace matching in the lint framework.

/// What a token is. Text is carried alongside in [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `self`, …).
    Ident,
    /// Lifetime (`'a`, `'static`). The leading `'` is included.
    Lifetime,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`. [`Token::text`] is the *unquoted* content.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or float, any base/suffix).
    Number,
    /// A single punctuation character (`.`, `!`, `#`, `(`, `{`, …).
    /// Multi-character operators arrive as consecutive tokens.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Token text. For [`TokenKind::Str`] this is the content between
    /// the quotes (escapes left as written); for everything else it is
    /// the raw source text.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Char offset of the token's first character in the source. The
    /// parser uses adjacency of consecutive punctuation (`pos + 1 ==
    /// next.pos`) to glue multi-character operators (`::`, `->`, `==`)
    /// back together without misreading spaced-out sequences.
    pub pos: usize,
}

impl Token {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Whether this token is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// A `// lint:allow(<lint>, reason=<free text>)` escape hatch found in
/// a comment. It silences `<lint>` findings on its own line and on the
/// line directly below it (so it can sit on the offending line or
/// immediately above it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Lint name being allowed (e.g. `unwrap`, `lock-order`).
    pub lint: String,
    /// The stated reason. Directives without a reason are rejected by
    /// the framework — an unexplained suppression is itself a finding.
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: u32,
}

/// Lexer output: the token stream plus side tables the lints use.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// Parsed `lint:allow` directives, in source order.
    pub allows: Vec<AllowDirective>,
    /// Comment lines carrying `lint:allow` text that failed to parse
    /// (missing reason, bad syntax). Reported as findings.
    pub malformed_allows: Vec<u32>,
}

/// Lexes Rust source. The lexer never fails: unterminated constructs
/// consume to end of input, which is good enough for lint purposes on
/// code that `rustc` already accepts.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphanumeric() => self.ident(),
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                c => {
                    let pos = self.pos;
                    self.push(TokenKind::Punct, c.to_string(), pos);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, pos: usize) {
        self.out.tokens.push(Token {
            kind,
            text,
            line: self.line,
            pos,
        });
    }

    fn bump_counting_lines(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.parse_allow(&text, start_line);
    }

    fn block_comment(&mut self) {
        // Nested block comments, as in Rust proper.
        let start_line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
                text.push_str("/*");
                continue;
            }
            if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                text.push_str("*/");
                if depth == 0 {
                    break;
                }
                continue;
            }
            self.bump_counting_lines();
            text.push(c);
        }
        self.parse_allow(&text, start_line);
    }

    fn parse_allow(&mut self, comment: &str, line: u32) {
        // Only recognized at the *start* of a comment, so prose that
        // mentions the grammar ("the lint:allow(x, reason=y) escape
        // hatch") never registers as a directive.
        let content = comment.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix("lint:allow") else {
            return;
        };
        let rest = rest.trim_start();
        let parsed = (|| {
            let inner = rest.strip_prefix('(')?;
            let close = inner.find(')')?;
            let body = &inner[..close];
            let (lint, reason_part) = body.split_once(',')?;
            let reason = reason_part.trim().strip_prefix("reason")?.trim_start();
            let reason = reason.strip_prefix('=')?.trim();
            if lint.trim().is_empty() || reason.is_empty() {
                return None;
            }
            Some(AllowDirective {
                lint: lint.trim().to_string(),
                reason: reason.to_string(),
                line,
            })
        })();
        match parsed {
            Some(a) => self.out.allows.push(a),
            None => self.out.malformed_allows.push(line),
        }
    }

    fn string(&mut self) {
        // Ordinary "..." with escapes. The opening quote is current.
        let start_pos = self.pos;
        self.pos += 1;
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    text.push(c);
                    self.bump_counting_lines();
                    if let Some(e) = self.bump_counting_lines() {
                        text.push(e);
                    }
                }
                '"' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump_counting_lines();
                }
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Str,
            text,
            line: start_line,
            pos: start_pos,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` — or returns
    /// false when the `r`/`b` is just the start of an identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c0 = self.peek(0).unwrap_or(' ');
        let mut ahead = 1;
        if c0 == 'b' && self.peek(1) == Some('r') {
            ahead = 2;
        }
        // b'x' byte char literal.
        if c0 == 'b' && self.peek(1) == Some('\'') {
            self.pos += 1; // consume `b`; char_or_lifetime sees the quote
            self.char_or_lifetime();
            return true;
        }
        // Count raw-string hashes after the prefix.
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false; // identifier like `raw` or `bytes`
        }
        if ahead == 1 && c0 == 'b' && hashes == 0 {
            // b"..." — plain byte string, escapes apply.
            self.pos += 1;
            self.string();
            return true;
        }
        if c0 == 'b' && ahead == 1 {
            return false; // b#… is not a literal prefix
        }
        // Raw string: skip prefix + hashes + opening quote.
        let start_pos = self.pos;
        self.pos += ahead + hashes + 1;
        let start_line = self.line;
        let mut text = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // Need `hashes` trailing #'s to close.
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        text.push(c);
                        self.bump_counting_lines();
                        continue 'outer;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            text.push(c);
            self.bump_counting_lines();
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Str,
            text,
            line: start_line,
            pos: start_pos,
        });
        true
    }

    fn char_or_lifetime(&mut self) {
        // Distinguish `'a'` (char) from `'a` (lifetime): after the
        // quote, an escape always means char; an ident char followed by
        // a closing quote means char; otherwise lifetime.
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // `'a'` is a char, `'a` / `'abc` are lifetimes. Scan the
                // ident run and see if a quote closes it.
                let mut ahead = 2;
                while matches!(self.peek(ahead), Some(c) if c == '_' || c.is_alphanumeric()) {
                    ahead += 1;
                }
                self.peek(ahead) == Some('\'')
            }
            Some(_) => true, // '(' etc. — punctuation chars like '{'
            None => false,
        };
        if !is_char {
            // Lifetime: quote + ident run.
            let start = self.pos;
            self.pos += 1;
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.push(TokenKind::Lifetime, text, start);
            return;
        }
        let start_line = self.line;
        let start_pos = self.pos;
        self.pos += 1; // opening quote
        let mut text = String::from("'");
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    text.push(c);
                    self.bump_counting_lines();
                    if let Some(e) = self.bump_counting_lines() {
                        text.push(e);
                    }
                }
                '\'' => {
                    text.push(c);
                    self.pos += 1;
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump_counting_lines();
                }
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Char,
            text,
            line: start_line,
            pos: start_pos,
        });
    }

    fn number(&mut self) {
        let start = self.pos;
        // Digits, base prefixes, underscores, a fractional part and
        // type suffixes all match the ident-ish character class; `.` is
        // included only when followed by a digit (so `0..10` and
        // `x.1.unwrap()` lex as separate tokens).
        while let Some(c) = self.peek(0) {
            if c == '_'
                || c.is_ascii_alphanumeric()
                || (c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()))
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Number, text, start);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Ident, text, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("fn main() { x.unwrap(); }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "main".into()));
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokenKind::Punct, "{".into())));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        // `panic!` inside a string must not appear as an Ident token.
        let toks = kinds(r#"let s = "panic!(unwrap())";"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "panic"));
        assert!(toks.contains(&(TokenKind::Str, "panic!(unwrap())".into())));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let toks = kinds(r#"let s = "a\"b"; x"#);
        assert!(toks.contains(&(TokenKind::Str, r#"a\"b"#.into())));
        assert!(toks.contains(&(TokenKind::Ident, "x".into())));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; done"###);
        assert!(toks.contains(&(TokenKind::Str, r#"quote " inside"#.into())));
        assert!(toks.contains(&(TokenKind::Ident, "done".into())));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'\n';"#);
        assert!(toks.contains(&(TokenKind::Str, "bytes".into())));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
        // `b` must not survive as a stray identifier.
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "b"));
    }

    #[test]
    fn identifiers_starting_with_r_and_b_are_idents() {
        let toks = kinds("let raw = bytes;");
        assert!(toks.contains(&(TokenKind::Ident, "raw".into())));
        assert!(toks.contains(&(TokenKind::Ident, "bytes".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'\\n'"));
    }

    #[test]
    fn line_comments_stripped() {
        let toks = kinds("x // unwrap() panic! todo!\ny");
        assert_eq!(toks.len(), 2);
        assert!(toks.contains(&(TokenKind::Ident, "y".into())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner unwrap() */ still comment */ z");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Ident, "z".into())
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\n/* c\nc */ b\nc";
        let lexed = lex(src);
        let find = |name: &str| lexed.tokens.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 5);
        assert_eq!(find("c"), 6);
        // The multi-line string starts on line 2.
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert_eq!(s.line, 2);
    }

    #[test]
    fn numbers_including_ranges_and_floats() {
        let toks = kinds("0..10 1.5 0xFF 1_000u64");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "10".into())));
        assert!(toks.contains(&(TokenKind::Number, "1.5".into())));
        assert!(toks.contains(&(TokenKind::Number, "0xFF".into())));
        assert!(toks.contains(&(TokenKind::Number, "1_000u64".into())));
        // `0..10` keeps its two dots as punctuation.
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Punct && t == ".")
                .count(),
            2
        );
    }

    #[test]
    fn method_calls_after_float_like_fields() {
        // Tuple-field access `x.0.lock()` must keep `lock` as an ident.
        let toks = kinds("x.0.lock()");
        assert!(toks.contains(&(TokenKind::Ident, "lock".into())));
    }

    #[test]
    fn allow_directive_parses() {
        let lexed = lex("x; // lint:allow(unwrap, reason=invariant: always set)\ny");
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.lint, "unwrap");
        assert_eq!(a.reason, "invariant: always set");
        assert_eq!(a.line, 1);
        assert!(lexed.malformed_allows.is_empty());
    }

    #[test]
    fn allow_directive_without_reason_is_malformed() {
        let lexed = lex("// lint:allow(unwrap)\n// lint:allow(panic, reason=)\nx");
        assert!(lexed.allows.is_empty());
        assert_eq!(lexed.malformed_allows, vec![1, 2]);
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panic() {
        let lexed = lex("let s = \"never closed\nstill string");
        assert_eq!(lexed.tokens.len(), 4); // let, s, =, Str
    }
}
