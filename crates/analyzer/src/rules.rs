//! The lint rules.
//!
//! Token-level rules are pure functions over the token stream of one
//! file; the flow-sensitive rules run over the analysis IR (AST →
//! [`crate::cfg`] → [`crate::dataflow`]) and the whole-workspace
//! [`crate::callgraph`]. The framework in the crate root handles
//! walking, test-region masking, `lint:allow` suppression, and the
//! cross-tree checks.

use std::collections::BTreeSet;

use crate::ast::{self, Block, Expr, Item, Pat, Stmt};
use crate::callgraph::CallGraph;
use crate::cfg::{self, AcquireSite, Cfg, Op};
use crate::dataflow::{self, Analysis};
use crate::lexer::{Token, TokenKind};
use crate::{in_test, Context, Finding};

/// Crates whose code paths carry a [`FailureInjector`]; a panic there
/// turns an injected, recoverable fault into a process abort, so the
/// whole panic family is forbidden outside tests.
///
/// [`FailureInjector`]: ../../liquid_sim/failure/struct.FailureInjector.html
pub const FAULT_CRATES: &[&str] = &["log", "kv", "messaging", "processing"];

/// Crates the panic-reachability proof neither traverses through nor
/// reports on: `sim` panics by design (lockdep violations, contract
/// asserts are *supposed* to abort), and the analyzer never runs on a
/// fault path.
pub const PANIC_EXEMPT_CRATES: &[&str] = &["sim", "analyzer"];

/// The storage layers allowed to touch `std::fs` directly: everything
/// else must route I/O through them so the failure injector sees it.
pub const RAW_IO_ALLOWED: &[&str] = &[
    "crates/log/src/storage.rs",
    "crates/kv/src/wal.rs",
    "crates/kv/src/sstable.rs",
];

/// Which struct fields are ranked locks: `(file basename, field name,
/// rank name)`. The rank *orders* live in `sim::lockdep::RANKS` (the
/// runtime checker's table, parsed from source by the framework), so
/// the static and dynamic checkers cannot disagree silently — a name
/// listed here but missing there is reported as rank-table drift.
pub const LOCK_FIELDS: &[(&str, &str, &str)] = &[
    ("consumer.rs", "state", "consumer.state"),
    ("group.rs", "groups", "group.groups"),
    ("cluster.rs", "state", "cluster.state"),
    // Per-partition lock shards: every partition's mutable state sits
    // behind its own mutex inside a `PartitionShard`, looked up (and
    // its `Arc` cloned) under a brief `cluster.state` read guard.
    ("cluster.rs", "part", "partition.state"),
    ("offsets.rs", "inner", "offsets.inner"),
    // Per-(group, topic-partition) offset shards: each committed-offset
    // slot sits behind its own mutex inside an `OffsetShard`, resolved
    // (and its `Arc` cloned) under a brief `offsets.inner` guard.
    ("offsets.rs", "slot", "offsets.shard"),
    ("quotas.rs", "limits", "quota.limits"),
    ("quotas.rs", "usage", "quota.usage"),
    ("quotas.rs", "throttled_total", "quota.throttled"),
    ("job.rs", "metrics", "job.metrics"),
    ("lib.rs", "state", "dfs.state"),
    ("lib.rs", "stats", "dfs.stats"),
    ("stack.rs", "feeds", "stack.feeds"),
    ("stack.rs", "managed", "stack.managed"),
    ("manager.rs", "state", "yarn.state"),
    // The producer's pending-batch mutex lives in the `batching` tuple
    // field and is always destructured into a local named `pending`
    // before locking, so the acquire sites key on that name.
    ("producer.rs", "pending", "producer.batches"),
    ("tree.rs", "state", "coord.tree"),
    ("acl.rs", "grants", "acl.grants"),
    ("log.rs", "cache", "log.pagecache"),
    // Segment-read cache shards: each shard's entry map sits behind its
    // own mutex inside a `ReadCacheShard`; a miss fills under the shard
    // lock and charges the page-cache model below it (rank 8 > 5).
    ("cache.rs", "shard", "log.readcache"),
];

/// Whether a field or binding name belongs to the offset domain
/// (log offsets, high-watermarks, epochs) whose arithmetic must be
/// overflow-checked.
pub fn is_offset_name(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n.contains("offset")
        || n.contains("watermark")
        || n.contains("high_water")
        || n.contains("epoch")
        || n == "hw"
        || n.ends_with("_hw")
}

/// Lint **panic**: library crates outside the fault set must not
/// contain `panic!`/`todo!`/`unimplemented!` outside tests — they just
/// get to keep `.unwrap()` where the call graph proves it unreachable
/// from a fault path (see [`panic_reachability`]).
pub fn panic_free_lib(
    crate_name: &str,
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if FAULT_CRATES.contains(&crate_name) {
        return; // covered by the stricter panic-reachability lint
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(regions, t.line) {
            continue;
        }
        if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "panic",
                message: format!("`{}!` in non-test library code", t.text),
            });
        }
    }
}

/// Lint **panic-reachability**: the interprocedural proof that no
/// panic can fire on a fault-injected path.
///
/// Two tiers of findings:
///
/// * every explicit panic site (`panic!` family, `.unwrap()`,
///   `.expect()`) in non-test code of a fault crate, regardless of
///   reachability — defense in depth, matching what the old
///   token-level rule enforced. When the call graph additionally
///   proves the site reachable from a public API, the finding carries
///   the call chain.
/// * unguarded indexing in fault crates, and *any* panic site in the
///   helper crates they depend on, only when reachable from a
///   fault-crate public function — with the chain that reaches it.
///
/// `sim` and the analyzer are exempt ([`PANIC_EXEMPT_CRATES`]).
pub fn panic_reachability(graph: &CallGraph, out: &mut Vec<Finding>) {
    let reach = graph.reach_from_pubs(FAULT_CRATES, PANIC_EXEMPT_CRATES);
    for (i, f) in graph.fns.iter().enumerate() {
        if f.in_test || PANIC_EXEMPT_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let is_fault = FAULT_CRATES.contains(&f.crate_name.as_str());
        for p in &f.panics {
            let message = if is_fault && !p.indexing {
                let mut m = format!(
                    "{} on a fault-injected path — return a typed error instead",
                    p.what
                );
                if reach.reachable[i] {
                    m.push_str(&format!(
                        " (reachable from the public API: {})",
                        graph.chain(&reach, i)
                    ));
                }
                m
            } else if reach.reachable[i] && p.indexing {
                format!(
                    "{} may panic and is reachable from a fault-crate public API ({}) — \
                     use .get() or establish bounds with a dominating len/contains check",
                    p.what,
                    graph.chain(&reach, i)
                )
            } else if reach.reachable[i] {
                format!(
                    "{} is reachable from a fault-crate public API ({}) — \
                     return a typed error instead",
                    p.what,
                    graph.chain(&reach, i)
                )
            } else {
                continue;
            };
            out.push(Finding {
                file: f.file.clone(),
                line: p.line,
                lint: "panic-reachability",
                message,
            });
        }
    }
}

/// Lint **dropped-result**: a call that (nominally) resolves to a
/// workspace function returning `Result` has its value discarded —
/// either as an expression statement or bound to `_`. Resolution is
/// by name/kind/arity against [`Context::result_sigs`], which only
/// contains signatures where *every* workspace candidate returns
/// `Result`, so common names shared with non-Result functions never
/// fire.
pub fn dropped_result(
    ctx: &Context,
    rel: &str,
    file: &ast::File,
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if ctx.result_sigs.is_empty() {
        return;
    }
    for_each_fn(&file.items, &mut |f| {
        let Some(body) = &f.body else { return };
        if in_test(regions, f.line) {
            return;
        }
        each_block(body, &mut |b| {
            for stmt in &b.stmts {
                let discarded = match stmt {
                    Stmt::Expr { expr, semi: true } => Some(expr),
                    Stmt::Let {
                        pat: Pat::Wild,
                        init: Some(init),
                        ..
                    } => Some(init),
                    _ => None,
                };
                let Some(e) = discarded else { continue };
                let (name, is_method, arity, line, qual) = match e {
                    Expr::MethodCall {
                        method, args, line, ..
                    } => (method.clone(), true, args.len(), *line, None),
                    Expr::Call { callee, args, line } => match callee.as_ref() {
                        Expr::Path { segs, .. } if !segs.is_empty() => (
                            segs.last().cloned().unwrap_or_default(),
                            false,
                            args.len(),
                            *line,
                            (segs.len() > 1).then(|| segs[0].clone()),
                        ),
                        _ => continue,
                    },
                    _ => continue,
                };
                if in_test(regions, line) {
                    continue;
                }
                // A qualified free call must point back into the
                // workspace (a liquid crate, `Self`, or a workspace
                // type) — `std::fs::read(..)` and friends are out of
                // scope for this lint.
                if let Some(q) = &qual {
                    let workspace_qual = q == "Self"
                        || q == "liquid"
                        || q.starts_with("liquid_")
                        || ctx.known_types.contains(q);
                    if !workspace_qual {
                        continue;
                    }
                }
                if ctx.result_sigs.contains(&(name.clone(), is_method, arity)) {
                    out.push(Finding {
                        file: rel.to_string(),
                        line,
                        lint: "dropped-result",
                        message: format!(
                            "result of `{name}` is discarded but every workspace `{name}` \
                             returns Result — handle the error or propagate it with `?`"
                        ),
                    });
                }
            }
        });
    });
}

/// Lint **unchecked-offset-arithmetic**: raw `+`/`-`/`*` (binary or
/// compound) over values flowing from the offset domain — log offsets,
/// high-watermarks, epochs — inside the fault crates. Seeds are the
/// matching field names parsed from `log`/`messaging` structs
/// ([`Context::offset_seeds`]) plus any binding whose own name matches
/// [`is_offset_name`]; taint propagates through assignments
/// ([`Op::Assign`]) to a fixpoint. Use `checked_*`/`saturating_*` so a
/// corrupted or wrapped offset fails loudly instead of silently
/// advancing the log.
pub fn unchecked_offset_arithmetic(
    ctx: &Context,
    crate_name: &str,
    rel: &str,
    file: &ast::File,
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !FAULT_CRATES.contains(&crate_name) {
        return;
    }
    for_each_fn(&file.items, &mut |f| {
        if f.body.is_none() || in_test(regions, f.line) {
            return;
        }
        let g = cfg::lower_fn(f);
        let mut assigns: Vec<(&String, &Vec<String>)> = Vec::new();
        let mut ariths: Vec<(char, &Vec<String>, u32)> = Vec::new();
        for b in &g.blocks {
            for op in &b.ops {
                match op {
                    Op::Assign { to, froms, .. } => assigns.push((to, froms)),
                    Op::Arith { op, names, line } => ariths.push((*op, names, *line)),
                    _ => {}
                }
            }
        }
        // Flow-insensitive taint closure over assignments.
        let mut extra: BTreeSet<&str> = BTreeSet::new();
        let seeded = |extra: &BTreeSet<&str>, n: &str| {
            is_offset_name(n) || ctx.offset_seeds.contains(n) || extra.contains(n)
        };
        loop {
            let mut changed = false;
            for (to, froms) in &assigns {
                if !extra.contains(to.as_str()) && froms.iter().any(|n| seeded(&extra, n)) {
                    extra.insert(to.as_str());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut seen_lines = BTreeSet::new();
        for (op, names, line) in ariths {
            if in_test(regions, line) || !seen_lines.insert((line, op)) {
                continue;
            }
            if let Some(name) = names.iter().find(|n| seeded(&extra, n)) {
                let verb = match op {
                    '-' => "sub",
                    '*' => "mul",
                    _ => "add",
                };
                out.push(Finding {
                    file: rel.to_string(),
                    line,
                    lint: "unchecked-offset-arithmetic",
                    message: format!(
                        "raw `{op}` on offset-domain value `{name}` — use \
                         checked_{verb}()/saturating_{verb}() so overflow cannot corrupt \
                         offsets silently"
                    ),
                });
            }
        }
    });
}

/// Lint **fault-site**: `injector.tick("site")` strings must be
/// registered in `sim::failure::SITES`. The receiver must be named
/// `injector` (or end in `_injector`) so unrelated `tick()` methods —
/// the resource manager's scheduler tick, the ETL job tick — are not
/// caught; `sim/failure.rs` itself is matched on any receiver. The
/// runtime `debug_assert!` inside `FailureInjector::tick` backstops
/// call sites this heuristic misses.
pub fn fault_sites(
    ctx: &Context,
    rel: &str,
    tokens: &[Token],
    out: &mut Vec<Finding>,
    sites_out: &mut Vec<(String, u32)>,
) {
    let in_failure_rs = rel == "crates/sim/src/failure.rs";
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("tick")
            || i == 0
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let recv_is_injector = i >= 2
            && tokens[i - 2].kind == TokenKind::Ident
            && (tokens[i - 2].text == "injector" || tokens[i - 2].text.ends_with("_injector"));
        if !recv_is_injector && !in_failure_rs {
            continue;
        }
        match tokens.get(i + 2) {
            Some(arg) if arg.kind == TokenKind::Str => {
                sites_out.push((arg.text.clone(), arg.line));
                if let Some(reg) = &ctx.sites {
                    if !reg.names.iter().any(|n| n == &arg.text) {
                        out.push(Finding {
                            file: rel.to_string(),
                            line: arg.line,
                            lint: "fault-site",
                            message: format!(
                                "fault site \"{}\" is not registered in sim::failure::SITES",
                                arg.text
                            ),
                        });
                    }
                }
            }
            Some(arg) if arg.is_punct(')') => out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "fault-site",
                message: "injector.tick() takes a site name — every decision point must be \
                          registered in sim::failure::SITES"
                    .to_string(),
            }),
            _ => out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "fault-site",
                message: "injector.tick() site must be a string literal so the registry \
                          stays statically checkable"
                    .to_string(),
            }),
        }
    }
}

/// Registry instrument constructors whose first argument is the
/// instrument name (the `_with` variants take labels after it).
const INSTRUMENT_CTORS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "counter_with",
    "gauge_with",
    "histogram_with",
];

/// Collects the names of obs registry instruments constructed with a
/// string-literal name (`reg.counter("log.append")`, `.gauge_with(...)`
/// …) into `out`. Feeds the cross-tree **obs-instrument** check: every
/// `injector.tick("site")` name must appear here as a twin metric.
pub fn obs_instruments(tokens: &[Token], out: &mut BTreeSet<String>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !INSTRUMENT_CTORS.contains(&t.text.as_str()) {
            continue;
        }
        if i == 0
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        if let Some(arg) = tokens.get(i + 2) {
            if arg.kind == TokenKind::Str {
                out.insert(arg.text.clone());
            }
        }
    }
}

/// Lint **raw-io**: in fault crates, `std::fs` / `File::` /
/// `OpenOptions::` usage outside [`RAW_IO_ALLOWED`] bypasses the
/// injector and makes the I/O untestable under chaos.
pub fn raw_io(
    crate_name: &str,
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !FAULT_CRATES.contains(&crate_name) || RAW_IO_ALLOWED.contains(&rel) {
        return;
    }
    let path_sep = |i: usize| {
        tokens.get(i).is_some_and(|t: &Token| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t: &Token| t.is_punct(':'))
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(regions, t.line) {
            continue;
        }
        let hit = (t.text == "std"
            && path_sep(i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("fs")))
            || (matches!(t.text.as_str(), "File" | "OpenOptions") && path_sep(i + 1));
        if hit {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "raw-io",
                message: "raw filesystem I/O outside the injectable storage layer — route \
                          through log::storage or the kv WAL/SSTable instead"
                    .to_string(),
            });
        }
    }
}

/// Lint **forbid-unsafe**: every `crates/<c>/src/lib.rs` must carry
/// `#![forbid(unsafe_code)]`, and no `unsafe` token may appear in any
/// workspace file (the attribute makes rustc enforce it; the lint
/// reports it at analysis time, before a compile).
pub fn forbid_unsafe(rel: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let is_lib =
        parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs";
    if is_lib {
        let found = tokens.windows(8).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && w[3].is_ident("forbid")
                && w[4].is_punct('(')
                && w[5].is_ident("unsafe_code")
                && w[6].is_punct(')')
                && w[7].is_punct(']')
        });
        if !found {
            out.push(Finding {
                file: rel.to_string(),
                line: 1,
                lint: "forbid-unsafe",
                message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    for t in tokens {
        if t.is_ident("unsafe") {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "forbid-unsafe",
                message: "`unsafe` is forbidden workspace-wide".to_string(),
            });
        }
    }
}

/// Lint **raw-thread**: outside `crates/sim`, spawning OS threads
/// directly (`std::thread::spawn`/`scope`/`Builder`) or reaching for
/// `parking_lot` primitives bypasses the liquid-check scheduler — the
/// model checker cannot interpose on a thread it did not create or a
/// lock it cannot see. Code must use `liquid_sim::thread::*` and the
/// ranked `liquid_sim::lockdep` wrappers instead. Paths qualified with
/// any crate other than `std` (e.g. `liquid_sim::thread::spawn`) are
/// allowed.
pub fn raw_thread(
    crate_name: &str,
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if crate_name == "sim" || crate_name == "analyzer" {
        // sim implements the scheduler; the analyzer only names these
        // tokens in its own rule tables and fixtures.
        return;
    }
    let path_sep = |i: usize| {
        tokens.get(i).is_some_and(|t: &Token| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t: &Token| t.is_punct(':'))
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(regions, t.line) {
            continue;
        }
        if t.text == "parking_lot" {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "raw-thread",
                message: "`parking_lot` locks are invisible to liquid-check — use the ranked \
                          wrappers in liquid_sim::lockdep instead"
                    .to_string(),
            });
            continue;
        }
        // `thread :: spawn|scope|Builder` where the path is rooted at
        // `std` (`std :: thread :: ...`) or is bare (`use std::thread;`
        // followed by `thread::spawn(...)`).
        if t.text != "thread"
            || !path_sep(i + 1)
            || !tokens
                .get(i + 3)
                .is_some_and(|t| matches!(t.text.as_str(), "spawn" | "scope" | "Builder"))
        {
            continue;
        }
        let qualifier = (i >= 3 && path_sep(i - 2)).then(|| tokens[i - 3].text.as_str());
        let raw = match qualifier {
            Some("std") => true,
            Some(_) => false, // liquid_sim::thread::spawn and friends
            None => true,     // bare thread::spawn — only std's is imported that way
        };
        if raw {
            let what = &tokens[i + 3].text;
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "raw-thread",
                message: format!(
                    "std::thread::{what} escapes the liquid-check scheduler — spawn through \
                     liquid_sim::thread::{} instead",
                    if what == "Builder" {
                        "spawn_named"
                    } else {
                        what
                    }
                ),
            });
        }
    }
}

/// The ranked-lock fields of one file, as `(field, rank)` pairs.
/// Empty for files with no [`LOCK_FIELDS`] entry.
pub(crate) fn ranked_fields(rel: &str) -> Vec<(&'static str, &'static str)> {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    LOCK_FIELDS
        .iter()
        .filter(|(file, _, _)| *file == base)
        .map(|(_, field, rank)| (*field, *rank))
        .collect()
}

/// Forward may-analysis: the set of acquire sites (indices into
/// [`Cfg::acquires`]) whose guard may still be live. Named guards die
/// on `drop`, shadowing, or scope exit ([`Op::Kill`]); temporaries die
/// at the end of their statement ([`Op::KillTemps`]).
pub(crate) struct HeldLocks<'a> {
    pub(crate) acquires: &'a [AcquireSite],
}

impl Analysis for HeldLocks<'_> {
    type Fact = BTreeSet<usize>;
    const BACKWARD: bool = false;

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn init(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool {
        let before = fact.len();
        fact.extend(other.iter().copied());
        fact.len() != before
    }

    fn transfer(&self, op: &Op, fact: &mut Self::Fact) {
        match op {
            Op::Acquire(i) => {
                fact.insert(*i);
            }
            Op::Kill { var, .. } => {
                fact.retain(|&i| self.acquires[i].var.as_deref() != Some(var.as_str()));
            }
            Op::KillTemps => {
                fact.retain(|&i| self.acquires[i].var.is_some());
            }
            _ => {}
        }
    }
}

/// Backward may-analysis: the set of binding names read on some path
/// after a point. `drop(x)` and scope exits are deliberately *not*
/// uses.
struct Liveness;

impl Analysis for Liveness {
    type Fact = BTreeSet<String>;
    const BACKWARD: bool = true;

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn init(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool {
        let before = fact.len();
        fact.extend(other.iter().cloned());
        fact.len() != before
    }

    fn transfer(&self, op: &Op, fact: &mut Self::Fact) {
        match op {
            Op::Mention { name } => {
                fact.insert(name.clone());
            }
            Op::Assign { to, froms, .. } => {
                fact.remove(to);
                fact.extend(froms.iter().cloned());
            }
            _ => {}
        }
    }
}

/// `(rank, order)` of each acquire site that maps to a ranked lock
/// field of this file, `None` for unranked acquisitions.
pub(crate) fn site_ranks(
    g: &Cfg,
    fields: &[(&'static str, &'static str)],
    order_of: &dyn Fn(&str) -> Option<u32>,
) -> Vec<Option<(&'static str, u32)>> {
    g.acquires
        .iter()
        .map(|s| {
            fields
                .iter()
                .find(|(fld, _)| *fld == s.field)
                .and_then(|&(_, rank)| order_of(rank).map(|o| (rank, o)))
        })
        .collect()
}

/// Lint **lock-order**: within a file whose fields appear in
/// [`LOCK_FIELDS`], a lock may only be acquired while every ranked
/// lock that *may* still be held (per the [`HeldLocks`] dataflow) has
/// a strictly higher order. Runs on test code too — a rank inversion
/// in a test deadlocks liquid-check just the same.
pub fn lock_order(ctx: &Context, rel: &str, file: &ast::File, out: &mut Vec<Finding>) {
    let Some(ranks) = &ctx.ranks else {
        return;
    };
    let fields = ranked_fields(rel);
    if fields.is_empty() {
        return;
    }
    let order_of = |rank: &str| {
        ranks
            .entries
            .iter()
            .find(|(n, _)| n == rank)
            .map(|(_, o)| *o)
    };
    for_each_fn(&file.items, &mut |f| {
        let g = cfg::lower_fn(f);
        if g.acquires.is_empty() {
            return;
        }
        let site_rank = site_ranks(&g, &fields, &order_of);
        let analysis = HeldLocks {
            acquires: &g.acquires,
        };
        let held = dataflow::solve(&g, &analysis);
        for b in 0..g.blocks.len() {
            dataflow::walk_ops(&g, &analysis, &held, b, |_, op, fact| {
                let Op::Acquire(i) = op else { return };
                let Some((rank, order)) = site_rank[*i] else {
                    return;
                };
                for &j in fact.iter() {
                    if j == *i {
                        continue;
                    }
                    let Some((held_rank, held_order)) = site_rank[j] else {
                        continue;
                    };
                    if order >= held_order {
                        out.push(Finding {
                            file: rel.to_string(),
                            line: g.acquires[*i].line,
                            lint: "lock-order",
                            message: format!(
                                "acquires \"{rank}\" (order {order}) while holding \
                                 \"{held_rank}\" (order {held_order}, taken on line {}) — the \
                                 lock hierarchy requires strictly descending orders",
                                g.acquires[j].line
                            ),
                        });
                    }
                }
            });
        }
    });
}

/// Lint **guard-liveness**: a fault-injection tick or raw filesystem
/// I/O executed while a ranked lock guard is held *and the guard is
/// already dead* — never read again on any path (per the backward
/// [`Liveness`] dataflow, closed over aliases). Under liquid-check a
/// tick is a schedule point: parking the thread with a lock held
/// serializes every contender, and under chaos injection the
/// "crashed" component keeps the lock. Since the guard has no further
/// use, the fix is mechanical: `drop(guard)` before the fallible
/// operation. Holds whose guard *is* still used afterwards are
/// deliberate critical sections and are not flagged — this is what
/// retires the old token-level held-io rule and its allow churn.
/// Guards named `_`-something (explicit scope-holds) and unnamed
/// statement temporaries are skipped.
pub fn guard_liveness(
    ctx: &Context,
    rel: &str,
    file: &ast::File,
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    let Some(ranks) = &ctx.ranks else {
        return;
    };
    let fields = ranked_fields(rel);
    if fields.is_empty() {
        return;
    }
    let order_of = |rank: &str| {
        ranks
            .entries
            .iter()
            .find(|(n, _)| n == rank)
            .map(|(_, o)| *o)
    };
    for_each_fn(&file.items, &mut |f| {
        if f.body.is_none() || in_test(regions, f.line) {
            return;
        }
        let g = cfg::lower_fn(f);
        if g.acquires.is_empty() {
            return;
        }
        let site_rank = site_ranks(&g, &fields, &order_of);
        let held_analysis = HeldLocks {
            acquires: &g.acquires,
        };
        let held = dataflow::solve(&g, &held_analysis);
        // (block, op index) → the fallible op and the ranked, named
        // guards that may be held across it.
        let mut events: Vec<(usize, usize, u32, bool, Vec<usize>)> = Vec::new();
        for b in 0..g.blocks.len() {
            dataflow::walk_ops(&g, &held_analysis, &held, b, |idx, op, fact| {
                let (line, is_tick) = match op {
                    Op::Tick { line } => (*line, true),
                    Op::Io { line } => (*line, false),
                    _ => return,
                };
                if in_test(regions, line) {
                    return;
                }
                let held_sites: Vec<usize> = fact
                    .iter()
                    .copied()
                    .filter(|&i| {
                        site_rank[i].is_some()
                            && g.acquires[i]
                                .var
                                .as_deref()
                                .is_some_and(|v| !v.starts_with('_'))
                    })
                    .collect();
                if !held_sites.is_empty() {
                    events.push((b, idx, line, is_tick, held_sites));
                }
            });
        }
        if events.is_empty() {
            return;
        }
        // Flow-insensitive alias pairs for the liveness closure: any
        // binding assigned *from* a guard keeps the guard "in use".
        let mut assigns: Vec<(String, Vec<String>)> = Vec::new();
        for blk in &g.blocks {
            for op in &blk.ops {
                if let Op::Assign { to, froms, .. } = op {
                    assigns.push((to.clone(), froms.clone()));
                }
            }
        }
        let live = dataflow::solve(&g, &Liveness);
        for b in 0..g.blocks.len() {
            dataflow::walk_ops(&g, &Liveness, &live, b, |idx, _, after| {
                for (eb, eidx, line, is_tick, held_sites) in &events {
                    if *eb != b || *eidx != idx {
                        continue;
                    }
                    for &site in held_sites {
                        let Some(var) = g.acquires[site].var.as_deref() else {
                            continue;
                        };
                        let aliases = alias_closure(&assigns, var);
                        if aliases.iter().any(|a| after.contains(a)) {
                            continue; // guard (or an alias) still in use
                        }
                        let (rank, order) = site_rank[site].unwrap_or(("?", 0));
                        out.push(Finding {
                            file: rel.to_string(),
                            line: *line,
                            lint: "guard-liveness",
                            message: format!(
                                "{} while holding ranked lock \"{rank}\" (order {order}, taken \
                                 on line {}) whose guard `{var}` is never used afterwards — \
                                 drop({var}) before the fallible operation",
                                if *is_tick {
                                    "fault-injection tick"
                                } else {
                                    "raw filesystem I/O"
                                },
                                g.acquires[site].line
                            ),
                        });
                    }
                }
            });
        }
    });
}

/// Transitive closure of `var` under assignment: every binding whose
/// initializer mentions `var` (or an alias of it) is an alias.
fn alias_closure(assigns: &[(String, Vec<String>)], var: &str) -> BTreeSet<String> {
    let mut set = BTreeSet::from([var.to_string()]);
    loop {
        let mut changed = false;
        for (to, froms) in assigns {
            if !set.contains(to) && froms.iter().any(|f| set.contains(f)) {
                set.insert(to.clone());
                changed = true;
            }
        }
        if !changed {
            return set;
        }
    }
}

/// Calls `f` for every function item in the tree, descending into
/// impls, traits, modules, and function-local items.
pub fn for_each_fn<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a ast::Fn)) {
    for item in items {
        match item {
            Item::Fn(func) => {
                f(func);
                if let Some(body) = &func.body {
                    for stmt in &body.stmts {
                        if let Stmt::Item(it) = stmt {
                            if let Item::Fn(nested) = it.as_ref() {
                                f(nested);
                            }
                        }
                    }
                }
            }
            Item::Impl { items, .. } | Item::Trait { items, .. } | Item::Mod { items, .. } => {
                for_each_fn(items, f);
            }
            Item::Struct(_) | Item::Other { .. } => {}
        }
    }
}

/// Calls `f` on `root` and every block nested inside it (branch
/// bodies, loop bodies, bare blocks).
fn each_block<'a>(root: &'a Block, f: &mut dyn FnMut(&'a Block)) {
    f(root);
    ast::walk_block(root, &mut |e| match e {
        Expr::Block(b) => f(b),
        Expr::If { then, .. } => f(then),
        Expr::While { body, .. } | Expr::Loop { body, .. } | Expr::For { body, .. } => f(body),
        _ => {}
    });
}
