//! The lint rules.
//!
//! Each rule is a pure function over the token stream of one file; the
//! framework in the crate root handles walking, test-region masking,
//! `lint:allow` suppression, and the cross-tree checks.

use crate::lexer::{Token, TokenKind};
use crate::{in_test, Context, Finding};

/// Crates whose code paths carry a [`FailureInjector`]; a panic there
/// turns an injected, recoverable fault into a process abort, so the
/// whole panic family is forbidden outside tests.
///
/// [`FailureInjector`]: ../../liquid_sim/failure/struct.FailureInjector.html
pub const FAULT_CRATES: &[&str] = &["log", "kv", "messaging", "processing"];

/// The storage layers allowed to touch `std::fs` directly: everything
/// else must route I/O through them so the failure injector sees it.
pub const RAW_IO_ALLOWED: &[&str] = &[
    "crates/log/src/storage.rs",
    "crates/kv/src/wal.rs",
    "crates/kv/src/sstable.rs",
];

/// Which struct fields are ranked locks: `(file basename, field name,
/// rank name)`. The rank *orders* live in `sim::lockdep::RANKS` (the
/// runtime checker's table, parsed from source by the framework), so
/// the static and dynamic checkers cannot disagree silently — a name
/// listed here but missing there is reported as rank-table drift.
pub const LOCK_FIELDS: &[(&str, &str, &str)] = &[
    ("consumer.rs", "state", "consumer.state"),
    ("group.rs", "groups", "group.groups"),
    ("cluster.rs", "state", "cluster.state"),
    ("offsets.rs", "inner", "offsets.inner"),
    ("quotas.rs", "limits", "quota.limits"),
    ("quotas.rs", "usage", "quota.usage"),
    ("quotas.rs", "throttled_total", "quota.throttled"),
    ("job.rs", "metrics", "job.metrics"),
    ("lib.rs", "state", "dfs.state"),
    ("lib.rs", "stats", "dfs.stats"),
    ("stack.rs", "feeds", "stack.feeds"),
    ("stack.rs", "managed", "stack.managed"),
    ("manager.rs", "state", "yarn.state"),
    ("tree.rs", "state", "coord.tree"),
    ("acl.rs", "grants", "acl.grants"),
    ("log.rs", "cache", "log.pagecache"),
];

/// Lint **unwrap**: no `.unwrap()`/`.expect()`/`panic!`/`todo!`/
/// `unimplemented!` in non-test code of the fault-injected crates.
pub fn unwrap_on_fault_path(
    crate_name: &str,
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !FAULT_CRATES.contains(&crate_name) {
        return;
    }
    panic_scan(rel, tokens, regions, "unwrap", true, out);
}

/// Lint **panic**: the remaining library crates must not contain
/// `panic!`/`todo!`/`unimplemented!` outside tests either — they just
/// get to keep `.unwrap()` for now.
pub fn panic_free_lib(
    crate_name: &str,
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if FAULT_CRATES.contains(&crate_name) {
        return; // covered by the stricter `unwrap` lint
    }
    panic_scan(rel, tokens, regions, "panic", false, out);
}

fn panic_scan(
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    lint: &'static str,
    include_unwrap: bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(regions, t.line) {
            continue;
        }
        let next_is = |c| tokens.get(i + 1).is_some_and(|n: &Token| n.is_punct(c));
        if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented") && next_is('!') {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint,
                message: format!("`{}!` in non-test library code", t.text),
            });
        }
        if include_unwrap
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && next_is('(')
        {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint,
                message: format!(
                    ".{}() on a fault-injected path — return a typed error instead",
                    t.text
                ),
            });
        }
    }
}

/// Lint **fault-site**: `injector.tick("site")` strings must be
/// registered in `sim::failure::SITES`. The receiver must be named
/// `injector` (or end in `_injector`) so unrelated `tick()` methods —
/// the resource manager's scheduler tick, the ETL job tick — are not
/// caught; `sim/failure.rs` itself is matched on any receiver. The
/// runtime `debug_assert!` inside `FailureInjector::tick` backstops
/// call sites this heuristic misses.
pub fn fault_sites(
    ctx: &Context,
    rel: &str,
    tokens: &[Token],
    out: &mut Vec<Finding>,
    sites_out: &mut Vec<(String, u32)>,
) {
    let in_failure_rs = rel == "crates/sim/src/failure.rs";
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("tick")
            || i == 0
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let recv_is_injector = i >= 2
            && tokens[i - 2].kind == TokenKind::Ident
            && (tokens[i - 2].text == "injector" || tokens[i - 2].text.ends_with("_injector"));
        if !recv_is_injector && !in_failure_rs {
            continue;
        }
        match tokens.get(i + 2) {
            Some(arg) if arg.kind == TokenKind::Str => {
                sites_out.push((arg.text.clone(), arg.line));
                if let Some(reg) = &ctx.sites {
                    if !reg.names.iter().any(|n| n == &arg.text) {
                        out.push(Finding {
                            file: rel.to_string(),
                            line: arg.line,
                            lint: "fault-site",
                            message: format!(
                                "fault site \"{}\" is not registered in sim::failure::SITES",
                                arg.text
                            ),
                        });
                    }
                }
            }
            Some(arg) if arg.is_punct(')') => out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "fault-site",
                message: "injector.tick() takes a site name — every decision point must be \
                          registered in sim::failure::SITES"
                    .to_string(),
            }),
            _ => out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "fault-site",
                message: "injector.tick() site must be a string literal so the registry \
                          stays statically checkable"
                    .to_string(),
            }),
        }
    }
}

/// Lint **raw-io**: in fault crates, `std::fs` / `File::` /
/// `OpenOptions::` usage outside [`RAW_IO_ALLOWED`] bypasses the
/// injector and makes the I/O untestable under chaos.
pub fn raw_io(
    crate_name: &str,
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !FAULT_CRATES.contains(&crate_name) || RAW_IO_ALLOWED.contains(&rel) {
        return;
    }
    let path_sep = |i: usize| {
        tokens.get(i).is_some_and(|t: &Token| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t: &Token| t.is_punct(':'))
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(regions, t.line) {
            continue;
        }
        let hit = (t.text == "std"
            && path_sep(i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("fs")))
            || (matches!(t.text.as_str(), "File" | "OpenOptions") && path_sep(i + 1));
        if hit {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "raw-io",
                message: "raw filesystem I/O outside the injectable storage layer — route \
                          through log::storage or the kv WAL/SSTable instead"
                    .to_string(),
            });
        }
    }
}

/// Lint **forbid-unsafe**: every `crates/<c>/src/lib.rs` must carry
/// `#![forbid(unsafe_code)]`, and no `unsafe` token may appear in any
/// workspace file (the attribute makes rustc enforce it; the lint
/// reports it at analysis time, before a compile).
pub fn forbid_unsafe(rel: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let is_lib =
        parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs";
    if is_lib {
        let found = tokens.windows(8).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && w[3].is_ident("forbid")
                && w[4].is_punct('(')
                && w[5].is_ident("unsafe_code")
                && w[6].is_punct(')')
                && w[7].is_punct(']')
        });
        if !found {
            out.push(Finding {
                file: rel.to_string(),
                line: 1,
                lint: "forbid-unsafe",
                message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    for t in tokens {
        if t.is_ident("unsafe") {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "forbid-unsafe",
                message: "`unsafe` is forbidden workspace-wide".to_string(),
            });
        }
    }
}

/// Lint **raw-thread**: outside `crates/sim`, spawning OS threads
/// directly (`std::thread::spawn`/`scope`/`Builder`) or reaching for
/// `parking_lot` primitives bypasses the liquid-check scheduler — the
/// model checker cannot interpose on a thread it did not create or a
/// lock it cannot see. Code must use `liquid_sim::thread::*` and the
/// ranked `liquid_sim::lockdep` wrappers instead. Paths qualified with
/// any crate other than `std` (e.g. `liquid_sim::thread::spawn`) are
/// allowed.
pub fn raw_thread(
    crate_name: &str,
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if crate_name == "sim" || crate_name == "analyzer" {
        // sim implements the scheduler; the analyzer only names these
        // tokens in its own rule tables and fixtures.
        return;
    }
    let path_sep = |i: usize| {
        tokens.get(i).is_some_and(|t: &Token| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t: &Token| t.is_punct(':'))
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(regions, t.line) {
            continue;
        }
        if t.text == "parking_lot" {
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "raw-thread",
                message: "`parking_lot` locks are invisible to liquid-check — use the ranked \
                          wrappers in liquid_sim::lockdep instead"
                    .to_string(),
            });
            continue;
        }
        // `thread :: spawn|scope|Builder` where the path is rooted at
        // `std` (`std :: thread :: ...`) or is bare (`use std::thread;`
        // followed by `thread::spawn(...)`).
        if t.text != "thread"
            || !path_sep(i + 1)
            || !tokens
                .get(i + 3)
                .is_some_and(|t| matches!(t.text.as_str(), "spawn" | "scope" | "Builder"))
        {
            continue;
        }
        let qualifier = (i >= 3 && path_sep(i - 2)).then(|| tokens[i - 3].text.as_str());
        let raw = match qualifier {
            Some("std") => true,
            Some(_) => false, // liquid_sim::thread::spawn and friends
            None => true,     // bare thread::spawn — only std's is imported that way
        };
        if raw {
            let what = &tokens[i + 3].text;
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "raw-thread",
                message: format!(
                    "std::thread::{what} escapes the liquid-check scheduler — spawn through \
                     liquid_sim::thread::{} instead",
                    if what == "Builder" {
                        "spawn_named"
                    } else {
                        what
                    }
                ),
            });
        }
    }
}

struct ActiveGuard {
    rank: &'static str,
    order: u32,
    name: Option<String>,
    depth: usize,
    line: u32,
}

/// The ranked-lock fields of one file, as `(field, rank)` pairs.
/// Empty for files with no [`LOCK_FIELDS`] entry.
fn ranked_fields(rel: &str) -> Vec<(&'static str, &'static str)> {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    LOCK_FIELDS
        .iter()
        .filter(|(file, _, _)| *file == base)
        .map(|(_, field, rank)| (*field, *rank))
        .collect()
}

/// Walks one file's tokens maintaining the set of live ranked-lock
/// guards. Guard lifetimes are tracked token-wise: a `let`-bound guard
/// lives until `drop(name)` or its block closes; an un-bound
/// (temporary) guard lives until the `;` ending its statement. This
/// intentionally over-approximates temporaries inside tail
/// expressions — the cost is a conservative finding, never a miss.
///
/// `visit` is called for every identifier token with the guards held
/// at that point; when the token is itself a ranked acquire,
/// `acquiring` carries its `(rank, order)` and the guard set does not
/// yet include it.
type GuardVisitor<'a> = dyn FnMut(usize, &Token, &[ActiveGuard], Option<(&'static str, u32)>) + 'a;

fn walk_guards(
    fields: &[(&'static str, &'static str)],
    order_of: &dyn Fn(&str) -> Option<u32>,
    tokens: &[Token],
    visit: &mut GuardVisitor<'_>,
) {
    let mut depth = 0usize;
    let mut guards: Vec<ActiveGuard> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !(g.name.is_none() && g.depth == depth));
            continue;
        }
        if t.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = tokens.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                if let Some(pos) = guards
                    .iter()
                    .rposition(|g| g.name.as_deref() == Some(name.text.as_str()))
                {
                    guards.remove(pos);
                }
            }
            continue;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        let is_acquire = tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|t| {
                t.kind == TokenKind::Ident && matches!(t.text.as_str(), "lock" | "read" | "write")
            })
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct(')'));
        let acquiring = fields
            .iter()
            .find(|(f, _)| *f == t.text)
            .filter(|_| is_acquire)
            .and_then(|&(_, rank)| order_of(rank).map(|order| (rank, order)));
        visit(i, t, &guards, acquiring);
        if let Some((rank, order)) = acquiring {
            guards.push(ActiveGuard {
                rank,
                order,
                name: binding_name(tokens, i),
                depth,
                line: t.line,
            });
        }
    }
}

/// Lint **lock-order**: within a file whose fields appear in
/// [`LOCK_FIELDS`], a lock may only be acquired while every
/// already-held ranked lock has a strictly *higher* order.
pub fn lock_order(ctx: &Context, rel: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let Some(ranks) = &ctx.ranks else {
        return;
    };
    let fields = ranked_fields(rel);
    if fields.is_empty() {
        return;
    }
    let order_of = |rank: &str| {
        ranks
            .entries
            .iter()
            .find(|(n, _)| n == rank)
            .map(|(_, o)| *o)
    };
    walk_guards(
        &fields,
        &order_of,
        tokens,
        &mut |_i, t, guards, acquiring| {
            let Some((rank, order)) = acquiring else {
                return;
            };
            for g in guards {
                if order >= g.order {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: t.line,
                        lint: "lock-order",
                        message: format!(
                            "acquires \"{rank}\" (order {order}) while holding \"{}\" (order {}, \
                         taken on line {}) — the lock hierarchy requires strictly descending \
                         orders",
                            g.rank, g.order, g.line
                        ),
                    });
                }
            }
        },
    );
}

/// Lint **held-io**: a fault-injection `injector.tick(...)` or raw
/// filesystem I/O reached while a ranked lock guard is live. Under
/// liquid-check a tick is a schedule point — parking the thread with a
/// lock held serializes every other thread contending for it, and
/// under chaos injection the "crashed" component keeps the lock.
/// Release the guard before the fallible operation, or carry a
/// `lint:allow(held-io, reason=...)` explaining why the hold is sound.
pub fn held_io(
    ctx: &Context,
    rel: &str,
    tokens: &[Token],
    regions: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    let Some(ranks) = &ctx.ranks else {
        return;
    };
    let fields = ranked_fields(rel);
    if fields.is_empty() {
        return;
    }
    let order_of = |rank: &str| {
        ranks
            .entries
            .iter()
            .find(|(n, _)| n == rank)
            .map(|(_, o)| *o)
    };
    let path_sep = |i: usize| {
        tokens.get(i).is_some_and(|t: &Token| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t: &Token| t.is_punct(':'))
    };
    walk_guards(&fields, &order_of, tokens, &mut |i, t, guards, _| {
        if guards.is_empty() || in_test(regions, t.line) {
            return;
        }
        let is_tick = t.is_ident("tick")
            && i >= 2
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens[i - 2].kind == TokenKind::Ident
            && (tokens[i - 2].text == "injector" || tokens[i - 2].text.ends_with("_injector"));
        let is_io = (t.text == "std"
            && path_sep(i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("fs")))
            || (matches!(t.text.as_str(), "File" | "OpenOptions") && path_sep(i + 1));
        if is_tick || is_io {
            let g = guards.last().expect("guards checked non-empty");
            out.push(Finding {
                file: rel.to_string(),
                line: t.line,
                lint: "held-io",
                message: format!(
                    "{} while holding ranked lock \"{}\" (order {}, taken on line {}) — \
                     release the guard before the fallible operation",
                    if is_tick {
                        "fault-injection tick"
                    } else {
                        "raw filesystem I/O"
                    },
                    g.rank,
                    g.order,
                    g.line
                ),
            });
        }
    });
}

/// If the statement containing token `i` is `let [mut] <name> = ...`,
/// returns the binding name; destructuring patterns and plain
/// expression statements yield `None` (treated as temporaries).
fn binding_name(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        let p = &tokens[j - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if !tokens.get(j)?.is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if tokens.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name = tokens.get(k)?;
    if name.kind == TokenKind::Ident && tokens.get(k + 1)?.is_punct('=') {
        Some(name.text.clone())
    } else {
        None
    }
}
