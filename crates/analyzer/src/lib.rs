#![forbid(unsafe_code)]
//! `liquid-lint`: project-specific static analysis for the Liquid
//! workspace.
//!
//! The build environment is offline (no registry), so stock clippy
//! plugins are unavailable; the invariants that matter to this codebase
//! are enforced by an in-repo pass instead. The analyzer lexes every
//! `crates/*/src/**/*.rs` file with the hand-rolled lexer in
//! [`lexer`] and runs the rules in [`rules`]:
//!
//! * **unwrap** — no `.unwrap()`/`.expect()`/`panic!`/`todo!` in
//!   non-test code of the fault-injected crates (`log`, `kv`,
//!   `messaging`, `processing`). A fault-path panic turns an injected,
//!   recoverable error into a process abort.
//! * **panic** — `panic!`/`todo!`/`unimplemented!` forbidden in the
//!   remaining library crates.
//! * **lock-order** — nested lock acquisitions must follow the rank
//!   table declared in `sim::lockdep::RANKS` (strictly descending).
//! * **fault-site** — every `injector.tick("site")` string must be
//!   registered in `sim::failure::SITES`, and every registered site
//!   must have at least one call site.
//! * **raw-io** — `std::fs`/`File::` I/O is confined to the storage
//!   layers that route through the failure injector.
//! * **raw-thread** — `std::thread::spawn`/`scope`/`Builder` and
//!   `parking_lot` primitives are confined to `crates/sim`; everything
//!   else spawns through `liquid_sim::thread` and locks through
//!   `liquid_sim::lockdep`, so liquid-check can schedule it.
//! * **held-io** — no fault-injection tick or raw I/O while a ranked
//!   lock guard is live in the same function body.
//! * **forbid-unsafe** — every crate's `lib.rs` carries
//!   `#![forbid(unsafe_code)]` and no `unsafe` token appears anywhere.
//!
//! Findings can be suppressed with a `lint:allow` comment directive
//! (see [`lexer::AllowDirective`]); a directive that is malformed,
//! names an unknown lint, or suppresses nothing is itself a finding
//! (lint **lint-allow**), so the escape hatch cannot rot silently.

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use lexer::{lex, Token, TokenKind};

/// Every lint name the analyzer can emit (and that `lint:allow` may
/// reference).
pub const LINTS: &[&str] = &[
    "unwrap",
    "panic",
    "lock-order",
    "fault-site",
    "raw-io",
    "raw-thread",
    "held-io",
    "forbid-unsafe",
    "lint-allow",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (one of [`LINTS`]).
    pub lint: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// The fault-site registry parsed out of `crates/sim/src/failure.rs`.
#[derive(Debug, Clone)]
pub struct SiteRegistry {
    /// Registered site names, in declaration order.
    pub names: Vec<String>,
    /// Line of the `SITES` declaration (for attributing findings).
    pub line: u32,
}

/// The lock rank table parsed out of `crates/sim/src/lockdep.rs`.
#[derive(Debug, Clone)]
pub struct RankTable {
    /// `(rank name, order)` pairs, in declaration order.
    pub entries: Vec<(String, u32)>,
    /// Line of the `RANKS` declaration.
    pub line: u32,
}

/// Cross-file context the rules need: the single-source-of-truth
/// tables live in the `sim` crate's *source* and are parsed from it
/// with the same lexer, so the analyzer can never drift from the
/// runtime checks without a finding.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// `None` when `failure.rs` is absent (fixture trees); membership
    /// checks are skipped then, but sites are still collected.
    pub sites: Option<SiteRegistry>,
    /// `None` when `lockdep.rs` is absent; the lock-order rule is
    /// skipped then.
    pub ranks: Option<RankTable>,
}

impl Context {
    /// Builds the context from a workspace root. Missing files are
    /// tolerated (fixture trees); files that exist but cannot be
    /// parsed produce findings.
    pub fn from_root(root: &Path) -> (Context, Vec<Finding>) {
        let mut ctx = Context::default();
        let mut findings = Vec::new();

        let failure = root.join("crates/sim/src/failure.rs");
        if let Ok(src) = fs::read_to_string(&failure) {
            match parse_sites(&src) {
                Some(reg) => ctx.sites = Some(reg),
                None => findings.push(Finding {
                    file: "crates/sim/src/failure.rs".to_string(),
                    line: 1,
                    lint: "fault-site",
                    message: "could not parse the `SITES` registry (expected \
                              `pub const SITES: &[&str] = &[\"...\", ...];`)"
                        .to_string(),
                }),
            }
        }

        let lockdep = root.join("crates/sim/src/lockdep.rs");
        if let Ok(src) = fs::read_to_string(&lockdep) {
            match parse_ranks(&src) {
                Some(table) => ctx.ranks = Some(table),
                None => findings.push(Finding {
                    file: "crates/sim/src/lockdep.rs".to_string(),
                    line: 1,
                    lint: "lock-order",
                    message: "could not parse the `RANKS` table (expected \
                              `pub const RANKS: &[(&str, u32)] = &[(\"name\", N), ...];`)"
                        .to_string(),
                }),
            }
        }

        (ctx, findings)
    }
}

/// Parses `const SITES: ... = &[...]` from `failure.rs` source.
pub fn parse_sites(src: &str) -> Option<SiteRegistry> {
    let tokens = lex(src).tokens;
    let start = find_const(&tokens, "SITES")?;
    let line = tokens[start].line;
    let mut names = Vec::new();
    for t in &tokens[start..] {
        if t.is_punct(';') {
            break;
        }
        if t.kind == TokenKind::Str {
            names.push(t.text.clone());
        }
    }
    if names.is_empty() {
        None
    } else {
        Some(SiteRegistry { names, line })
    }
}

/// Parses `const RANKS: ... = &[("name", order), ...]` from
/// `lockdep.rs` source.
pub fn parse_ranks(src: &str) -> Option<RankTable> {
    let tokens = lex(src).tokens;
    let start = find_const(&tokens, "RANKS")?;
    let line = tokens[start].line;
    let mut entries = Vec::new();
    let mut pending: Option<String> = None;
    for t in &tokens[start..] {
        if t.is_punct(';') {
            break;
        }
        match t.kind {
            TokenKind::Str => pending = Some(t.text.clone()),
            TokenKind::Number => {
                if let Some(name) = pending.take() {
                    let digits: String = t.text.chars().filter(|c| *c != '_').collect();
                    if let Ok(order) = digits.parse::<u32>() {
                        entries.push((name, order));
                    }
                }
            }
            _ => {}
        }
    }
    if entries.is_empty() {
        None
    } else {
        Some(RankTable { entries, line })
    }
}

fn find_const(tokens: &[Token], name: &str) -> Option<usize> {
    (1..tokens.len()).find(|&i| tokens[i].is_ident(name) && tokens[i - 1].is_ident("const"))
}

/// `#[cfg(test)]` / `#[test]` item spans as inclusive line ranges.
/// Recovered by brace matching: the region runs from the attribute to
/// the end of the item it decorates (`;` or the matching `}` of the
/// item's first block).
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (is_test, mut j) = parse_attr(tokens, i + 1);
        if !is_test {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let (_, after) = parse_attr(tokens, j + 1);
            j = after;
        }
        let (end_idx, end_line) = item_end(tokens, j);
        regions.push((tokens[i].line, end_line));
        i = end_idx;
    }
    regions
}

/// Whether `line` falls inside any test region.
pub fn in_test(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// From the index of an attribute's `[`, returns (is-test-attribute,
/// index just past the matching `]`). A test attribute is `#[test]` or
/// anything containing a literal `cfg ( test )` sequence; `not(test)`
/// does not match.
fn parse_attr(tokens: &[Token], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut j = open;
    let mut close = tokens.len();
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                close = j;
                break;
            }
        }
        j += 1;
    }
    let inner = &tokens[open + 1..close.min(tokens.len())];
    let is_test = (inner.len() == 1 && inner[0].is_ident("test"))
        || inner.windows(4).any(|w| {
            w[0].is_ident("cfg")
                && w[1].is_punct('(')
                && w[2].is_ident("test")
                && w[3].is_punct(')')
        });
    (is_test, close.saturating_add(1).min(tokens.len()))
}

/// Scans forward from the first token of an item to its end: a `;` at
/// bracket depth zero, or the matching `}` of its first brace block.
/// Returns (index past the end, last line of the item).
fn item_end(tokens: &[Token], start: usize) -> (usize, u32) {
    let mut paren = 0i32;
    let mut brack = 0i32;
    let mut k = start;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            brack += 1;
        } else if t.is_punct(']') {
            brack -= 1;
        } else if t.is_punct(';') && paren == 0 && brack == 0 {
            return (k + 1, t.line);
        } else if t.is_punct('{') && paren == 0 && brack == 0 {
            let mut depth = 1i32;
            k += 1;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            let line = tokens.get(k.saturating_sub(1)).map_or(0, |t| t.line);
            return (k, line);
        }
        k += 1;
    }
    (tokens.len(), tokens.last().map_or(0, |t| t.line))
}

/// Per-file analysis output.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings after `lint:allow` suppression.
    pub findings: Vec<Finding>,
    /// `injector.tick("...")` sites seen, as `(site, line)`.
    pub tick_sites: Vec<(String, u32)>,
}

/// Lints one file. `rel` is the workspace-relative path
/// (`crates/<name>/src/...`), which determines which rules apply.
pub fn analyze_file(ctx: &Context, rel: &str, src: &str) -> FileReport {
    let lexed = lex(src);
    let regions = test_regions(&lexed.tokens);
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");

    let mut raw = Vec::new();
    let mut tick_sites = Vec::new();
    rules::unwrap_on_fault_path(crate_name, rel, &lexed.tokens, &regions, &mut raw);
    rules::panic_free_lib(crate_name, rel, &lexed.tokens, &regions, &mut raw);
    rules::lock_order(ctx, rel, &lexed.tokens, &mut raw);
    rules::fault_sites(ctx, rel, &lexed.tokens, &mut raw, &mut tick_sites);
    rules::raw_io(crate_name, rel, &lexed.tokens, &regions, &mut raw);
    rules::raw_thread(crate_name, rel, &lexed.tokens, &regions, &mut raw);
    rules::held_io(ctx, rel, &lexed.tokens, &regions, &mut raw);
    rules::forbid_unsafe(rel, &lexed.tokens, &mut raw);

    // `lint:allow` suppression: a directive covers its own line and
    // the line directly below it.
    let mut used = vec![false; lexed.allows.len()];
    raw.retain(|f| {
        let hit = lexed
            .allows
            .iter()
            .position(|a| a.lint == f.lint && (a.line == f.line || a.line + 1 == f.line));
        match hit {
            Some(i) => {
                used[i] = true;
                false
            }
            None => true,
        }
    });
    for (i, a) in lexed.allows.iter().enumerate() {
        if !LINTS.contains(&a.lint.as_str()) {
            raw.push(Finding {
                file: rel.to_string(),
                line: a.line,
                lint: "lint-allow",
                message: format!("lint:allow names unknown lint \"{}\"", a.lint),
            });
        } else if !used[i] && !in_test(&regions, a.line) {
            raw.push(Finding {
                file: rel.to_string(),
                line: a.line,
                lint: "lint-allow",
                message: format!(
                    "unused lint:allow({}) — it suppresses nothing on this or the next line",
                    a.lint
                ),
            });
        }
    }
    for &line in &lexed.malformed_allows {
        raw.push(Finding {
            file: rel.to_string(),
            line,
            lint: "lint-allow",
            message: "malformed lint:allow directive (expected \
                      lint:allow(<lint>, reason=<why>))"
                .to_string(),
        });
    }

    FileReport {
        findings: raw,
        tick_sites,
    }
}

/// Workspace-relative paths of every `crates/*/src/**/*.rs` file,
/// sorted for deterministic output.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            collect_rs(root, &src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .map_err(|e| format!("path {} not under root: {e}", p.display()))?;
            let rel: Vec<String> = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect();
            out.push(rel.join("/"));
        }
    }
    Ok(())
}

/// Runs every rule over the whole workspace plus the cross-tree checks
/// (unused registry entries, rank-table drift).
pub fn analyze_root(root: &Path) -> Result<Vec<Finding>, String> {
    let (ctx, mut findings) = Context::from_root(root);
    let mut used_sites: BTreeMap<String, u32> = BTreeMap::new();
    for rel in workspace_files(root)? {
        let src =
            fs::read_to_string(root.join(&rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let rep = analyze_file(&ctx, &rel, &src);
        findings.extend(rep.findings);
        for (site, _) in rep.tick_sites {
            *used_sites.entry(site).or_default() += 1;
        }
    }
    if let Some(reg) = &ctx.sites {
        for name in &reg.names {
            if !used_sites.contains_key(name) {
                findings.push(Finding {
                    file: "crates/sim/src/failure.rs".to_string(),
                    line: reg.line,
                    lint: "fault-site",
                    message: format!(
                        "registered fault site \"{name}\" has no injector.tick(\"{name}\") call site"
                    ),
                });
            }
        }
    }
    if let Some(ranks) = &ctx.ranks {
        for (file, field, rank) in rules::LOCK_FIELDS {
            if !ranks.entries.iter().any(|(n, _)| n == rank) {
                findings.push(Finding {
                    file: "crates/sim/src/lockdep.rs".to_string(),
                    line: ranks.line,
                    lint: "lock-order",
                    message: format!(
                        "lock field {file}::{field} maps to rank \"{rank}\", which is not \
                         declared in sim::lockdep::RANKS"
                    ),
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}
