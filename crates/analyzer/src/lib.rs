#![forbid(unsafe_code)]
//! `liquid-lint`: project-specific static analysis for the Liquid
//! workspace.
//!
//! The build environment is offline (no registry), so stock clippy
//! plugins are unavailable; the invariants that matter to this codebase
//! are enforced by an in-repo pass instead. The analyzer is layered as
//! a small reusable IR — [`lexer`] → [`parse`]/[`ast`] → [`cfg`] (with
//! the generic [`dataflow`] solver) → the whole-workspace
//! [`callgraph`] — and the rules in [`rules`] run at whichever layer
//! gives them the precision they need:
//!
//! * **panic-reachability** — interprocedural proof that no `panic!`
//!   family macro, `.unwrap()`/`.expect()`, or unguarded indexing is
//!   reachable from the public API of the fault-injected crates
//!   (`log`, `kv`, `messaging`, `processing`). Findings carry the call
//!   chain that reaches the site.
//! * **dropped-result** — a call resolving to a workspace function
//!   that returns `Result` is discarded (`expr;` or `let _ = expr;`).
//! * **unchecked-offset-arithmetic** — raw `+`/`-`/`*` on values
//!   flowing from offset/high-watermark/epoch fields (seeded from the
//!   `log`/`messaging` struct declarations) must be
//!   `checked_*`/`saturating_*`.
//! * **guard-liveness** — a fault-injection tick or raw I/O while a
//!   ranked lock guard is held *dead* (never used again): the guard
//!   should be dropped first. Flow- and liveness-sensitive, so
//!   deliberate critical sections are not flagged.
//! * **panic** — `panic!`/`todo!`/`unimplemented!` forbidden in the
//!   remaining library crates.
//! * **lock-order** — nested lock acquisitions must follow the rank
//!   table declared in `sim::lockdep::RANKS` (strictly descending),
//!   checked over the CFG's may-held lock sets.
//! * **fault-site** — every `injector.tick("site")` string must be
//!   registered in `sim::failure::SITES`, and every registered site
//!   must have at least one call site.
//! * **obs-instrument** — every fault-injection site used by the tree
//!   must have a twin metric: a registry instrument
//!   (`counter`/`gauge`/`histogram`) registered under the same name,
//!   so an injected failure is always visible in an [`obs
//!   snapshot`](../liquid_obs/stats/index.html). Skipped when the
//!   `obs` crate is absent (fixture trees).
//! * **raw-io** — `std::fs`/`File::` I/O is confined to the storage
//!   layers that route through the failure injector.
//! * **raw-thread** — `std::thread::spawn`/`scope`/`Builder` and
//!   `parking_lot` primitives are confined to `crates/sim`; everything
//!   else spawns through `liquid_sim::thread` and locks through
//!   `liquid_sim::lockdep`, so liquid-check can schedule it.
//! * **forbid-unsafe** — every crate's `lib.rs` carries
//!   `#![forbid(unsafe_code)]` and no `unsafe` token appears anywhere.
//! * **hot-copy** — interprocedural zero-copy taint over the batched
//!   produce/fetch hot path: no deep copy (`to_vec`,
//!   `extend_from_slice`, …) of payload bytes reachable from the hot
//!   roots; findings carry the root→copy call-chain witness (see
//!   [`hotpath`]).
//! * **lock-cost** — interprocedural critical-section audit of every
//!   ranked lockdep guard: hot-path guards held across injectable I/O
//!   or a nested ranked acquisition are findings, and every guard's
//!   static cost (I/O, allocations, loops, nested locks) lands in the
//!   `target/analysis/lock-cost.json` contention report (see
//!   [`lockcost`]).
//! * **shard** — interprocedural lock-shardability classification:
//!   every ranked guard is proven *partition-local* (all accesses
//!   keyed by a partition identity), *cross-partition*, or *unknown*,
//!   with witness access chains in the
//!   `target/analysis/shardability.json` report; hot exclusive guards
//!   proven partition-local but not yet sharded are findings (see
//!   [`shard`]).
//! * **atomicity** — interprocedural lock-gap atomicity analysis:
//!   every value derived from a ranked guard's deref is tainted, the
//!   guard-drop point detected (explicit `drop` or scope end), and any
//!   gap-crossing consult of the stale value inside a later ranked
//!   critical section is a finding with a full
//!   read-site → drop-site → use witness chain, unless
//!   machine-validated (reacquire / carried-key shapes) or allowed;
//!   per-site verdicts land in `target/analysis/atomicity.json` (see
//!   [`atomicity`]).
//!
//! Findings can be suppressed with a `lint:allow` comment directive
//! (see [`lexer::AllowDirective`]); a directive that is malformed,
//! names an unknown lint, or suppresses nothing is itself a finding
//! (lint **lint-allow**), so the escape hatch cannot rot silently.
//! Directives stack: several allows on consecutive lines all cover the
//! first non-directive line below them.

pub mod ast;
pub mod atomicity;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod hotpath;
pub mod lexer;
pub mod lockcost;
pub mod parse;
pub mod rules;
pub mod shard;

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::fs;
use std::path::Path;

use lexer::{lex, Lexed, Token, TokenKind};

/// Every lint name the analyzer can emit (and that `lint:allow` may
/// reference).
pub const LINTS: &[&str] = &[
    "panic-reachability",
    "dropped-result",
    "unchecked-offset-arithmetic",
    "guard-liveness",
    "panic",
    "lock-order",
    "fault-site",
    "obs-instrument",
    "raw-io",
    "raw-thread",
    "forbid-unsafe",
    "hot-copy",
    "lock-cost",
    "shard",
    "atomicity",
    "lint-allow",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (one of [`LINTS`]).
    pub lint: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// The fault-site registry parsed out of `crates/sim/src/failure.rs`.
#[derive(Debug, Clone)]
pub struct SiteRegistry {
    /// Registered site names, in declaration order.
    pub names: Vec<String>,
    /// Line of the `SITES` declaration (for attributing findings).
    pub line: u32,
}

/// The lock rank table parsed out of `crates/sim/src/lockdep.rs`.
#[derive(Debug, Clone)]
pub struct RankTable {
    /// `(rank name, order)` pairs, in declaration order.
    pub entries: Vec<(String, u32)>,
    /// Line of the `RANKS` declaration.
    pub line: u32,
}

/// Cross-file context the rules need. The single-source-of-truth
/// tables live in the `sim` crate's *source* and are parsed from it
/// with the same lexer, so the analyzer can never drift from the
/// runtime checks without a finding; the workspace-derived fields
/// (offset seeds, Result signatures) are filled in by
/// [`analyze_root`]'s context phase.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// `None` when `failure.rs` is absent (fixture trees); membership
    /// checks are skipped then, but sites are still collected.
    pub sites: Option<SiteRegistry>,
    /// `None` when `lockdep.rs` is absent; the lock-order and
    /// guard-liveness rules are skipped then.
    pub ranks: Option<RankTable>,
    /// Offset-domain field names parsed from `log`/`messaging` struct
    /// declarations (taint seeds for unchecked-offset-arithmetic).
    pub offset_seeds: BTreeSet<String>,
    /// `(name, is_method, arity)` call shapes where *every* matching
    /// workspace function returns `Result` (dropped-result lint).
    pub result_sigs: HashSet<(String, bool, usize)>,
    /// Type names with a workspace `impl` block (used to decide
    /// whether a qualified call points back into the workspace).
    pub known_types: BTreeSet<String>,
    /// Whether the tree ships the `obs` crate; the obs-instrument
    /// twin-metric check only runs when it does, so fixture trees
    /// exercising other lints are not forced to register metrics.
    pub has_obs: bool,
}

impl Context {
    /// Builds the sim-table part of the context from a workspace root.
    /// Missing files are tolerated (fixture trees); files that exist
    /// but cannot be parsed produce findings.
    pub fn from_root(root: &Path) -> (Context, Vec<Finding>) {
        let mut ctx = Context::default();
        let mut findings = Vec::new();

        let failure = root.join("crates/sim/src/failure.rs");
        if let Ok(src) = fs::read_to_string(&failure) {
            match parse_sites(&src) {
                Some(reg) => ctx.sites = Some(reg),
                None => findings.push(Finding {
                    file: "crates/sim/src/failure.rs".to_string(),
                    line: 1,
                    lint: "fault-site",
                    message: "could not parse the `SITES` registry (expected \
                              `pub const SITES: &[&str] = &[\"...\", ...];`)"
                        .to_string(),
                }),
            }
        }

        ctx.has_obs = root.join("crates/obs/src/registry.rs").is_file();

        let lockdep = root.join("crates/sim/src/lockdep.rs");
        if let Ok(src) = fs::read_to_string(&lockdep) {
            match parse_ranks(&src) {
                Some(table) => ctx.ranks = Some(table),
                None => findings.push(Finding {
                    file: "crates/sim/src/lockdep.rs".to_string(),
                    line: 1,
                    lint: "lock-order",
                    message: "could not parse the `RANKS` table (expected \
                              `pub const RANKS: &[(&str, u32)] = &[(\"name\", N), ...];`)"
                        .to_string(),
                }),
            }
        }

        (ctx, findings)
    }
}

/// Parses `const SITES: ... = &[...]` from `failure.rs` source.
pub fn parse_sites(src: &str) -> Option<SiteRegistry> {
    let tokens = lex(src).tokens;
    let start = find_const(&tokens, "SITES")?;
    let line = tokens[start].line;
    let mut names = Vec::new();
    for t in &tokens[start..] {
        if t.is_punct(';') {
            break;
        }
        if t.kind == TokenKind::Str {
            names.push(t.text.clone());
        }
    }
    if names.is_empty() {
        None
    } else {
        Some(SiteRegistry { names, line })
    }
}

/// Parses `const RANKS: ... = &[("name", order), ...]` from
/// `lockdep.rs` source.
pub fn parse_ranks(src: &str) -> Option<RankTable> {
    let tokens = lex(src).tokens;
    let start = find_const(&tokens, "RANKS")?;
    let line = tokens[start].line;
    let mut entries = Vec::new();
    let mut pending: Option<String> = None;
    for t in &tokens[start..] {
        if t.is_punct(';') {
            break;
        }
        match t.kind {
            TokenKind::Str => pending = Some(t.text.clone()),
            TokenKind::Number => {
                if let Some(name) = pending.take() {
                    let digits: String = t.text.chars().filter(|c| *c != '_').collect();
                    if let Ok(order) = digits.parse::<u32>() {
                        entries.push((name, order));
                    }
                }
            }
            _ => {}
        }
    }
    if entries.is_empty() {
        None
    } else {
        Some(RankTable { entries, line })
    }
}

fn find_const(tokens: &[Token], name: &str) -> Option<usize> {
    (1..tokens.len()).find(|&i| tokens[i].is_ident(name) && tokens[i - 1].is_ident("const"))
}

/// `#[cfg(test)]` / `#[test]` item spans as inclusive line ranges.
/// Recovered by brace matching: the region runs from the attribute to
/// the end of the item it decorates (`;` or the matching `}` of the
/// item's first block).
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (is_test, mut j) = parse_attr(tokens, i + 1);
        if !is_test {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let (_, after) = parse_attr(tokens, j + 1);
            j = after;
        }
        let (end_idx, end_line) = item_end(tokens, j);
        regions.push((tokens[i].line, end_line));
        i = end_idx;
    }
    regions
}

/// Whether `line` falls inside any test region.
pub fn in_test(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// From the index of an attribute's `[`, returns (is-test-attribute,
/// index just past the matching `]`). A test attribute is `#[test]` or
/// anything containing a literal `cfg ( test )` sequence; `not(test)`
/// does not match.
fn parse_attr(tokens: &[Token], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut j = open;
    let mut close = tokens.len();
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                close = j;
                break;
            }
        }
        j += 1;
    }
    let inner = &tokens[open + 1..close.min(tokens.len())];
    let is_test = (inner.len() == 1 && inner[0].is_ident("test"))
        || inner.windows(4).any(|w| {
            w[0].is_ident("cfg")
                && w[1].is_punct('(')
                && w[2].is_ident("test")
                && w[3].is_punct(')')
        });
    (is_test, close.saturating_add(1).min(tokens.len()))
}

/// Scans forward from the first token of an item to its end: a `;` at
/// bracket depth zero, or the matching `}` of its first brace block.
/// Returns (index past the end, last line of the item).
fn item_end(tokens: &[Token], start: usize) -> (usize, u32) {
    let mut paren = 0i32;
    let mut brack = 0i32;
    let mut k = start;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            brack += 1;
        } else if t.is_punct(']') {
            brack -= 1;
        } else if t.is_punct(';') && paren == 0 && brack == 0 {
            return (k + 1, t.line);
        } else if t.is_punct('{') && paren == 0 && brack == 0 {
            let mut depth = 1i32;
            k += 1;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            let line = tokens.get(k.saturating_sub(1)).map_or(0, |t| t.line);
            return (k, line);
        }
        k += 1;
    }
    (tokens.len(), tokens.last().map_or(0, |t| t.line))
}

/// One loaded workspace file: lexed, test-masked, and (when the parser
/// succeeds) parsed. A parse failure is tolerated — token rules still
/// run; the `every_workspace_file_parses` test keeps the real tree at
/// 100% parse coverage.
pub struct SourceData {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Lexer output (tokens + allow directives).
    pub lexed: Lexed,
    /// `#[cfg(test)]`/`#[test]` line regions.
    pub regions: Vec<(u32, u32)>,
    /// Parsed AST, `None` when the parser rejected the file.
    pub ast: Option<ast::File>,
}

/// Lexes and parses one file.
pub fn load_source(rel: &str, src: &str) -> SourceData {
    let lexed = lex(src);
    let regions = test_regions(&lexed.tokens);
    let ast = parse::parse_file(&lexed.tokens).ok();
    SourceData {
        rel: rel.to_string(),
        lexed,
        regions,
        ast,
    }
}

/// Runs the per-file rules (everything except panic-reachability and
/// the cross-tree checks) over one loaded file, *without* `lint:allow`
/// suppression. Returns the raw findings plus the
/// `injector.tick("...")` sites seen.
pub fn analyze_file_raw(ctx: &Context, data: &SourceData) -> (Vec<Finding>, Vec<(String, u32)>) {
    let crate_name = data
        .rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let mut raw = Vec::new();
    let mut tick_sites = Vec::new();
    let tokens = &data.lexed.tokens;
    rules::panic_free_lib(crate_name, &data.rel, tokens, &data.regions, &mut raw);
    rules::fault_sites(ctx, &data.rel, tokens, &mut raw, &mut tick_sites);
    rules::raw_io(crate_name, &data.rel, tokens, &data.regions, &mut raw);
    rules::raw_thread(crate_name, &data.rel, tokens, &data.regions, &mut raw);
    rules::forbid_unsafe(&data.rel, tokens, &mut raw);
    if let Some(ast) = &data.ast {
        rules::lock_order(ctx, &data.rel, ast, &mut raw);
        rules::guard_liveness(ctx, &data.rel, ast, &data.regions, &mut raw);
        rules::unchecked_offset_arithmetic(
            ctx,
            crate_name,
            &data.rel,
            ast,
            &data.regions,
            &mut raw,
        );
        rules::dropped_result(ctx, &data.rel, ast, &data.regions, &mut raw);
    }
    (raw, tick_sites)
}

/// Applies `lint:allow` suppression to one file's raw findings and
/// appends the surviving findings (plus any directive-hygiene
/// findings) to `out`.
///
/// A directive covers its own line and the first non-directive line
/// below it, so directives for different lints can stack above a
/// single offending line.
pub fn apply_allows(data: &SourceData, mut raw: Vec<Finding>, out: &mut Vec<Finding>) {
    let allows = &data.lexed.allows;
    let directive_lines: BTreeSet<u32> = allows.iter().map(|a| a.line).collect();
    let target = |a: u32| {
        let mut t = a + 1;
        while directive_lines.contains(&t) {
            t += 1;
        }
        t
    };
    let mut used = vec![false; allows.len()];
    raw.retain(|f| {
        let hit = allows
            .iter()
            .position(|a| a.lint == f.lint && (a.line == f.line || target(a.line) == f.line));
        match hit {
            Some(i) => {
                used[i] = true;
                false
            }
            None => true,
        }
    });
    out.extend(raw);
    for (i, a) in allows.iter().enumerate() {
        if !LINTS.contains(&a.lint.as_str()) {
            out.push(Finding {
                file: data.rel.clone(),
                line: a.line,
                lint: "lint-allow",
                message: format!("lint:allow names unknown lint \"{}\"", a.lint),
            });
        } else if !used[i] && !in_test(&data.regions, a.line) {
            out.push(Finding {
                file: data.rel.clone(),
                line: a.line,
                lint: "lint-allow",
                message: format!(
                    "unused lint:allow({}) — it suppresses nothing on this line or the line \
                     below the directive stack",
                    a.lint
                ),
            });
        }
    }
    for &line in &data.lexed.malformed_allows {
        out.push(Finding {
            file: data.rel.clone(),
            line,
            lint: "lint-allow",
            message: "malformed lint:allow directive (expected \
                      lint:allow(<lint>, reason=<why>))"
                .to_string(),
        });
    }
}

/// Workspace-relative paths of every `crates/*/src/**/*.rs` file,
/// sorted for deterministic output.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            collect_rs(root, &src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .map_err(|e| format!("path {} not under root: {e}", p.display()))?;
            let rel: Vec<String> = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect();
            out.push(rel.join("/"));
        }
    }
    Ok(())
}

/// Workspace-internal dependency edges, parsed from each crate's
/// `Cargo.toml` `[dependencies]` section: `liquid-foo.workspace =
/// true` → crate directory `foo` (`liquid` itself is `crates/core`).
/// Dev-dependencies are excluded — test-only edges must not extend the
/// panic-reachability proof. Empty when no manifests exist (fixture
/// trees), which disables crate scoping in the call graph.
pub fn workspace_deps(root: &Path) -> BTreeMap<String, Vec<String>> {
    let mut deps = BTreeMap::new();
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return deps;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let dir = entry.path();
        let Some(name) = dir.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let mut in_deps = false;
        let mut edges = Vec::new();
        for line in manifest.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            let Some(key) = line.split(['.', '=', ' ']).next() else {
                continue;
            };
            if key == "liquid" {
                edges.push("core".to_string());
            } else if let Some(rest) = key.strip_prefix("liquid-") {
                edges.push(rest.to_string());
            }
        }
        deps.insert(name, edges);
    }
    deps
}

/// Offset-domain taint seeds: field names of structs declared in
/// `crates/log` and `crates/messaging` whose names match the offset
/// domain ([`rules::is_offset_name`]).
fn offset_seeds(files: &[SourceData]) -> BTreeSet<String> {
    let mut seeds = BTreeSet::new();
    for f in files {
        if !(f.rel.starts_with("crates/log/") || f.rel.starts_with("crates/messaging/")) {
            continue;
        }
        let Some(ast) = &f.ast else { continue };
        collect_struct_seeds(&ast.items, &mut seeds);
    }
    seeds
}

fn collect_struct_seeds(items: &[ast::Item], seeds: &mut BTreeSet<String>) {
    for item in items {
        match item {
            ast::Item::Struct(s) => {
                for field in &s.fields {
                    if rules::is_offset_name(&field.name) {
                        seeds.insert(field.name.clone());
                    }
                }
            }
            ast::Item::Impl { items, .. }
            | ast::Item::Trait { items, .. }
            | ast::Item::Mod { items, .. } => collect_struct_seeds(items, seeds),
            _ => {}
        }
    }
}

/// Parsed workspace sources plus the inter-crate dependency map.
type LoadedWorkspace = (Vec<SourceData>, BTreeMap<String, Vec<String>>);

/// Loads every workspace file and builds the call graph (used by both
/// [`analyze_root`] and the `--emit-callgraph` mode).
fn load_workspace(root: &Path) -> Result<LoadedWorkspace, String> {
    let mut files = Vec::new();
    for rel in workspace_files(root)? {
        let src =
            fs::read_to_string(root.join(&rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        files.push(load_source(&rel, &src));
    }
    Ok((files, workspace_deps(root)))
}

fn build_graph<'a>(
    files: &'a [SourceData],
    deps: BTreeMap<String, Vec<String>>,
) -> callgraph::CallGraph {
    let sources: Vec<callgraph::SourceFile<'a>> = files
        .iter()
        .filter_map(|f| {
            f.ast.as_ref().map(|ast| callgraph::SourceFile {
                rel: &f.rel,
                ast,
                test_regions: &f.regions,
            })
        })
        .collect();
    callgraph::CallGraph::build(&sources, deps)
}

/// Renders the workspace call graph as GraphViz DOT
/// (`liquid-lint --emit-callgraph`).
pub fn callgraph_dot(root: &Path) -> Result<String, String> {
    let (files, deps) = load_workspace(root)?;
    Ok(build_graph(&files, deps).to_dot())
}

/// Runs every rule over the whole workspace plus the cross-tree checks
/// (panic reachability, unused registry entries, rank-table drift).
pub fn analyze_root(root: &Path) -> Result<Vec<Finding>, String> {
    analyze_root_with_report(root).map(|(findings, _)| findings)
}

/// The machine-readable analysis artifacts produced alongside the
/// findings (the CLI writes them under `target/analysis/`).
#[derive(Debug, Default)]
pub struct AnalysisReports {
    /// Lock-cost contention report (`lock-cost.json`).
    pub lock_cost: lockcost::LockCostReport,
    /// Lock-shardability report (`shardability.json`).
    pub shardability: shard::ShardReport,
    /// Lock-gap atomicity report (`atomicity.json`).
    pub atomicity: atomicity::AtomicityReport,
}

/// [`analyze_root`], additionally returning the lock-cost contention,
/// lock-shardability and lock-gap atomicity reports (the CLI writes
/// them to `target/analysis/lock-cost.json` / `shardability.json` /
/// `atomicity.json`).
pub fn analyze_root_with_report(root: &Path) -> Result<(Vec<Finding>, AnalysisReports), String> {
    // Phase A: read, lex, parse.
    let (mut ctx, ctx_findings) = Context::from_root(root);
    let (files, deps) = load_workspace(root)?;

    // Phase B: workspace context — taint seeds, the call graph, and
    // the Result-signature map derived from it.
    ctx.offset_seeds = offset_seeds(&files);
    let graph = build_graph(&files, deps);
    let mut sig_stats: BTreeMap<(String, bool, usize), (usize, usize)> = BTreeMap::new();
    for f in &graph.fns {
        if f.in_test {
            continue;
        }
        let entry = sig_stats
            .entry((f.name.clone(), f.has_self, f.arity))
            .or_insert((0, 0));
        entry.0 += 1;
        if f.returns_result {
            entry.1 += 1;
        }
        if let Some(ty) = &f.self_ty {
            ctx.known_types.insert(ty.clone());
        }
    }
    ctx.result_sigs = sig_stats
        .into_iter()
        .filter(|(_, (total, result))| *total > 0 && total == result)
        .map(|(k, _)| k)
        .collect();

    // Phase C: per-file rules, the interprocedural proof, then
    // `lint:allow` suppression per file.
    let mut raw_by_file: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    let mut used_sites: BTreeSet<String> = BTreeSet::new();
    // Site name → first *non-test* `injector.tick` call site (files are
    // visited in sorted order, so "first" is deterministic). Only these
    // need twin metrics; a tick in a `#[test]` is not a hot path.
    let mut lib_sites: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut instruments: BTreeSet<String> = BTreeSet::new();
    for f in &files {
        let (raw, ticks) = analyze_file_raw(&ctx, f);
        raw_by_file.entry(&f.rel).or_default().extend(raw);
        for (site, line) in ticks {
            if !in_test(&f.regions, line) {
                lib_sites
                    .entry(site.clone())
                    .or_insert_with(|| (f.rel.clone(), line));
            }
            used_sites.insert(site);
        }
        rules::obs_instruments(&f.lexed.tokens, &mut instruments);
    }
    let mut cross_findings = Vec::new();
    rules::panic_reachability(&graph, &mut cross_findings);
    hotpath::hot_copy(&graph, &files, &mut cross_findings);
    let report = AnalysisReports {
        lock_cost: lockcost::lock_cost(&ctx, &graph, &files, &mut cross_findings),
        shardability: shard::shard(&ctx, &graph, &files, &mut cross_findings),
        atomicity: atomicity::atomicity(&ctx, &graph, &files, &mut cross_findings),
    };
    for finding in cross_findings {
        match files.iter().find(|f| f.rel == finding.file) {
            Some(f) => raw_by_file.entry(&f.rel).or_default().push(finding),
            None => raw_by_file.entry("").or_default().push(finding),
        }
    }

    let mut findings = ctx_findings;
    for f in &files {
        let raw = raw_by_file.remove(f.rel.as_str()).unwrap_or_default();
        apply_allows(f, raw, &mut findings);
    }
    for (_, orphans) in raw_by_file {
        findings.extend(orphans);
    }

    // Cross-tree checks (not suppressible: they have no single line to
    // hang an allow on).
    if let Some(reg) = &ctx.sites {
        for name in &reg.names {
            if !used_sites.contains(name) {
                findings.push(Finding {
                    file: "crates/sim/src/failure.rs".to_string(),
                    line: reg.line,
                    lint: "fault-site",
                    message: format!(
                        "registered fault site \"{name}\" has no injector.tick(\"{name}\") call site"
                    ),
                });
            }
        }
    }
    if ctx.has_obs {
        for (site, (file, line)) in &lib_sites {
            if !instruments.contains(site) {
                findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    lint: "obs-instrument",
                    message: format!(
                        "fault site \"{site}\" has no twin obs instrument — register a \
                         counter/gauge/histogram named \"{site}\" so injected failures at \
                         this site stay visible in registry snapshots"
                    ),
                });
            }
        }
    }
    if let Some(ranks) = &ctx.ranks {
        for (file, field, rank) in rules::LOCK_FIELDS {
            if !ranks.entries.iter().any(|(n, _)| n == rank) {
                findings.push(Finding {
                    file: "crates/sim/src/lockdep.rs".to_string(),
                    line: ranks.line,
                    lint: "lock-order",
                    message: format!(
                        "lock field {file}::{field} maps to rank \"{rank}\", which is not \
                         declared in sim::lockdep::RANKS"
                    ),
                });
            }
        }
        // The reverse direction: a rank declared in the runtime table
        // that no [`rules::LOCK_FIELDS`] entry maps to is invisible to
        // the static checkers (lock-order, guard-liveness, lock-cost).
        for (name, _) in &ranks.entries {
            if !rules::LOCK_FIELDS.iter().any(|(_, _, rank)| rank == name) {
                findings.push(Finding {
                    file: "crates/sim/src/lockdep.rs".to_string(),
                    line: ranks.line,
                    lint: "lock-order",
                    message: format!(
                        "rank \"{name}\" is declared in sim::lockdep::RANKS but no lock field \
                         in rules::LOCK_FIELDS maps to it — the static lock checkers cannot \
                         see its acquisitions"
                    ),
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    Ok((findings, report))
}
