//! CLI entry point. `cargo run -p liquid-lint` from anywhere inside
//! the workspace lints the whole tree; `--deny` makes findings fatal
//! (CI mode); `--root <path>` overrides workspace discovery (used by
//! the fixture tests); `--sarif` emits SARIF 2.1.0 for code-scanning
//! upload; `--emit-callgraph` dumps the resolved call graph as DOT.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut sarif = false;
    let mut emit_callgraph = false;
    let mut only: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--emit-callgraph" => emit_callgraph = true,
            "--only" => match args.next() {
                Some(p) => only = Some(p),
                None => {
                    eprintln!(
                        "liquid-lint: --only requires a path prefix (e.g. crates/analyzer) \
                         or a lint name (e.g. shard)"
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("liquid-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "liquid-lint — project-specific static analysis for the Liquid workspace\n\
                     \n\
                     USAGE: liquid-lint [--deny] [--json | --sarif] [--only <prefix>]\n\
                     \x20                [--emit-callgraph] [--root <workspace>]\n\
                     \n\
                     Walks crates/*/src/**/*.rs, builds the AST → CFG → call-graph analysis\n\
                     IR, and enforces: panic-reachability (no panic/unwrap/unguarded indexing\n\
                     reachable from fault-crate public APIs), dropped-result,\n\
                     unchecked-offset-arithmetic, guard-liveness, panic, lock-order\n\
                     (rank table from sim::lockdep::RANKS), fault-site (registry in\n\
                     sim::failure::SITES), raw-io, raw-thread, forbid-unsafe, hot-copy\n\
                     (no deep copy of payload bytes reachable from the produce/fetch hot\n\
                     path), lock-cost (no I/O or nested ranked locks inside hot-path\n\
                     critical sections; writes the target/analysis/lock-cost.json\n\
                     contention report), shard (ranked guards classified\n\
                     partition-local / cross-partition / unknown; hot exclusive guards\n\
                     proven partition-local but not yet split are findings; writes the\n\
                     target/analysis/shardability.json report), atomicity (no\n\
                     stale use of guard-derived state across a drop/reacquire gap\n\
                     unless machine-validated; witness chains per finding; writes the\n\
                     target/analysis/atomicity.json report). Suppress a\n\
                     finding with a comment directive on or above the offending line:\n\
                     \n\
                     \x20   // lint:allow(<lint>, reason=<why this one is sound>)\n\
                     \n\
                     --deny            exit 1 when there are findings (CI mode)\n\
                     --json            machine-readable output: {{\"findings\":[...],\"count\":N,\n\
                     \x20                 \"reports\":[<analysis artifacts written>]}}\n\
                     --sarif           SARIF 2.1.0 output (GitHub code-scanning upload)\n\
                     --only <sel>      keep only findings under the given path prefix\n\
                     \x20                 (e.g. --only crates/analyzer for the self-lint step)\n\
                     \x20                 or of the given lint (e.g. --only shard); an\n\
                     \x20                 unknown lint name is a usage error\n\
                     --emit-callgraph  print the resolved workspace call graph as GraphViz\n\
                     \x20                 DOT and exit (no linting)\n\
                     --root            workspace root (default: nearest ancestor with a\n\
                     \x20                 crates/ dir)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("liquid-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if json && sarif {
        eprintln!("liquid-lint: --json and --sarif are mutually exclusive");
        return ExitCode::from(2);
    }
    // `--only` takes either a path prefix (anything with a `/`) or an
    // exact lint name; an unknown bare name is a usage error, not a
    // silent empty filter.
    if let Some(sel) = &only {
        if !sel.contains('/') && !liquid_lint::LINTS.contains(&sel.as_str()) {
            eprintln!(
                "liquid-lint: --only {sel:?} is neither a path prefix nor a known lint \
                 (known lints: {})",
                liquid_lint::LINTS.join(", ")
            );
            return ExitCode::from(2);
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "liquid-lint: could not find a workspace root (no crates/ directory here \
                 or above); pass --root <path>"
            );
            return ExitCode::from(2);
        }
    };

    if emit_callgraph {
        return match liquid_lint::callgraph_dot(&root) {
            Ok(dot) => {
                print!("{dot}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("liquid-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match liquid_lint::analyze_root_with_report(&root) {
        Ok((mut findings, reports)) => {
            // The analysis reports are build artifacts, not lint
            // output: written unconditionally so CI can diff them
            // against the checked-in baselines even on clean runs.
            let report_dir = root.join("target/analysis");
            let mut written: Vec<String> = Vec::new();
            for (name, body) in [
                ("lock-cost.json", reports.lock_cost.to_json()),
                ("shardability.json", reports.shardability.to_json()),
                ("atomicity.json", reports.atomicity.to_json()),
            ] {
                let report_path = report_dir.join(name);
                match std::fs::create_dir_all(&report_dir)
                    .and_then(|()| std::fs::write(&report_path, body))
                {
                    Ok(()) => written.push(format!("target/analysis/{name}")),
                    Err(e) => eprintln!(
                        "liquid-lint: warning: could not write {}: {e}",
                        report_path.display()
                    ),
                }
            }
            if let Some(sel) = &only {
                if sel.contains('/') {
                    findings.retain(|f| f.file.starts_with(sel.as_str()));
                } else {
                    findings.retain(|f| f.lint == sel.as_str());
                }
            }
            if sarif {
                println!("{}", render_sarif(&findings));
            } else if json {
                println!("{}", render_json(&findings, &written));
            } else if findings.is_empty() {
                println!("liquid-lint: clean");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("liquid-lint: {} finding(s)", findings.len());
            }
            // --deny semantics are identical across output formats.
            if deny && !findings.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("liquid-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// `{"findings":[{"file":...,"line":N,"lint":...,"message":...}],
/// "count":N,"reports":[...]}` — `reports` lists the workspace-relative
/// analysis artifacts this run actually wrote, so CI jobs consume the
/// paths from the output instead of hard-coding them. Hand-rolled (the
/// build environment has no serde); strings are escaped per RFC 8259.
fn render_json(findings: &[liquid_lint::Finding], reports: &[String]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.lint),
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{},\"reports\":[", findings.len()));
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(r)));
    }
    out.push_str("]}");
    out
}

/// Minimal SARIF 2.1.0 document: one run, one rule per lint, one
/// result per finding. Hand-rolled like [`render_json`]; the shape
/// follows what GitHub code scanning requires (`tool.driver` with
/// rules, `results` with `ruleId`/`message`/`locations`).
fn render_sarif(findings: &[liquid_lint::Finding]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"liquid-lint\",\
         \"informationUri\":\"https://example.invalid/liquid-lint\",\
         \"rules\":[",
    );
    for (i, lint) in liquid_lint::LINTS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{0}\",\"name\":\"{0}\",\"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            json_escape(lint)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\
             \"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            json_escape(f.lint),
            json_escape(&f.message),
            json_escape(&f.file),
            f.line.max(1)
        ));
    }
    out.push_str("]}]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
