//! CLI entry point. `cargo run -p liquid-lint` from anywhere inside
//! the workspace lints the whole tree; `--deny` makes findings fatal
//! (CI mode); `--root <path>` overrides workspace discovery (used by
//! the fixture tests).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("liquid-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "liquid-lint — project-specific static analysis for the Liquid workspace\n\
                     \n\
                     USAGE: liquid-lint [--deny] [--json] [--root <workspace>]\n\
                     \n\
                     Walks crates/*/src/**/*.rs and enforces: unwrap (no panics on fault\n\
                     paths), panic (panic-free library crates), lock-order (rank table from\n\
                     sim::lockdep::RANKS), fault-site (registry in sim::failure::SITES),\n\
                     raw-io (injectable storage only), forbid-unsafe. Suppress a finding\n\
                     with a comment directive on or above the offending line:\n\
                     \n\
                     \x20   // lint:allow(<lint>, reason=<why this one is sound>)\n\
                     \n\
                     --deny   exit 1 when there are findings (CI mode)\n\
                     --json   machine-readable output: {{\"findings\":[...],\"count\":N}}\n\
                     \x20        (CI turns these into GitHub error annotations)\n\
                     --root   workspace root (default: nearest ancestor with a crates/ dir)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("liquid-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "liquid-lint: could not find a workspace root (no crates/ directory here \
                 or above); pass --root <path>"
            );
            return ExitCode::from(2);
        }
    };

    match liquid_lint::analyze_root(&root) {
        Ok(findings) if findings.is_empty() => {
            if json {
                println!("{}", render_json(&findings));
            } else {
                println!("liquid-lint: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            if json {
                println!("{}", render_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("liquid-lint: {} finding(s)", findings.len());
            }
            // --deny semantics are identical with and without --json.
            if deny {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("liquid-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// `{"findings":[{"file":...,"line":N,"lint":...,"message":...}],"count":N}`.
/// Hand-rolled (the build environment has no serde); strings are
/// escaped per RFC 8259.
fn render_json(findings: &[liquid_lint::Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.lint),
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
