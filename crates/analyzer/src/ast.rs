//! The analysis AST.
//!
//! Produced by the recursive-descent parser in [`crate::parse`] over
//! the token stream from [`crate::lexer`]. The tree is deliberately
//! *analysis-shaped* rather than fully faithful: types are carried as
//! flattened token text (the rules only ever ask "does the return type
//! name `Result`" or "what is this field called"), generics and
//! lifetimes are skipped, and attributes are dropped (test masking
//! uses the token-level region table, which the rules already share).
//! Everything the flow-sensitive rules need — items, bodies,
//! statements, expressions, patterns, call structure — is represented
//! losslessly.

/// A parsed source file: its top-level items.
#[derive(Debug, Default)]
pub struct File {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// One item. Items the rules never look inside (`use`, `const`,
/// `type`, enums) are represented by their kind and line only.
#[derive(Debug)]
pub enum Item {
    /// A free function, method, or trait method.
    Fn(Fn),
    /// A struct definition with named fields (tuple/unit structs keep
    /// an empty field list).
    Struct(Struct),
    /// An `impl` block; `self_ty` is the flattened self-type text.
    Impl {
        /// Flattened self-type text (e.g. `Segment`, `Cluster`).
        self_ty: String,
        /// The trait being implemented, if any (flattened text).
        trait_: Option<String>,
        /// Associated items (functions, consts, types).
        items: Vec<Item>,
        /// 1-based line of the `impl` keyword.
        line: u32,
    },
    /// A trait definition; default method bodies are parsed.
    Trait {
        /// Trait name.
        name: String,
        /// Associated items.
        items: Vec<Item>,
        /// 1-based line.
        line: u32,
    },
    /// An inline module.
    Mod {
        /// Module name.
        name: String,
        /// Items inside the module.
        items: Vec<Item>,
        /// 1-based line.
        line: u32,
    },
    /// Anything else: `use`, `const`, `static`, `type`, `enum`,
    /// `extern crate`, item-position macro invocations.
    Other {
        /// 1-based line.
        line: u32,
    },
}

/// A function definition (or trait-method declaration, body `None`).
#[derive(Debug)]
pub struct Fn {
    /// Function name.
    pub name: String,
    /// Whether the function carries any `pub` visibility.
    pub is_pub: bool,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Non-`self` parameters.
    pub params: Vec<Param>,
    /// Flattened return-type text (`Result < u64 , LogError >`), or
    /// `None` for `()`.
    pub ret: Option<String>,
    /// The body; `None` for trait-method declarations.
    pub body: Option<Block>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One non-`self` function parameter.
#[derive(Debug)]
pub struct Param {
    /// The binding pattern (usually a plain identifier).
    pub pat: Pat,
    /// Flattened type text.
    pub ty: String,
}

/// A struct definition.
#[derive(Debug)]
pub struct Struct {
    /// Struct name.
    pub name: String,
    /// Named fields; empty for tuple/unit structs.
    pub fields: Vec<Field>,
    /// 1-based line.
    pub line: u32,
}

/// One named struct field.
#[derive(Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Flattened type text.
    pub ty: String,
    /// 1-based line.
    pub line: u32,
}

/// A `{ ... }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order. A tail expression is the final
    /// [`Stmt::Expr`] with `semi == false`.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: u32,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> (= <init>)? (else <block>)? ;`
    Let {
        /// Binding pattern.
        pat: Pat,
        /// Initializer, if present.
        init: Option<Expr>,
        /// `let ... else { ... }` diverging block.
        else_block: Option<Block>,
        /// 1-based line.
        line: u32,
    },
    /// An expression statement; `semi` is false for tail expressions
    /// and block-like statements.
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed.
        semi: bool,
    },
    /// A nested item (fn, struct, use, ... inside a body).
    Item(Box<Item>),
}

/// A match arm.
#[derive(Debug)]
pub struct Arm {
    /// The (possibly or-) pattern.
    pub pat: Pat,
    /// `if` guard, when present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// 1-based line of the pattern.
    pub line: u32,
}

/// An expression.
#[derive(Debug)]
pub enum Expr {
    /// A path: `x`, `self`, `Segment :: new`, `crate :: Result`.
    /// Turbofish type arguments are dropped.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// 1-based line.
        line: u32,
    },
    /// Any literal (number, string, char, bool).
    Lit {
        /// Raw literal text (string contents for strings).
        text: String,
        /// 1-based line.
        line: u32,
    },
    /// `callee(args)`.
    Call {
        /// Callee expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `recv.method(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `base.field` (tuple indices arrive as numeric names).
    FieldAccess {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// 1-based line.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// Index expression (may be a range).
        index: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// Binary operation; `op` is the operator text (`+`, `==`, `&&`).
    Binary {
        /// Operator text.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// Prefix unary operation (`-`, `!`, `*`).
    Unary {
        /// Operator character.
        op: char,
        /// Operand.
        operand: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `lhs = rhs` or compound `lhs op= rhs` (`op` carries `+` etc.).
    Assign {
        /// Assignment target.
        lhs: Box<Expr>,
        /// Compound operator, `None` for plain `=`.
        op: Option<String>,
        /// Value.
        rhs: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `&expr` / `&mut expr`.
    Ref {
        /// Whether `mut` follows the `&`.
        is_mut: bool,
        /// Referent.
        expr: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `expr?`.
    Try {
        /// Inner expression.
        expr: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `expr as Type` (type text dropped — taint flows through).
    Cast {
        /// Inner expression.
        expr: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `if` / `if let`; `else_` is another `If` or a `Block`.
    If {
        /// `if let` pattern, when present.
        pat: Option<Pat>,
        /// Condition (scrutinee for `if let`).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Else branch (`Expr::If` or `Expr::Block`).
        else_: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `match`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
        /// 1-based line.
        line: u32,
    },
    /// `while` / `while let`.
    While {
        /// `while let` pattern, when present.
        pat: Option<Pat>,
        /// Condition (scrutinee for `while let`).
        cond: Box<Expr>,
        /// Body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `loop`.
    Loop {
        /// Body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `for <pat> in <iter>`.
    For {
        /// Loop pattern.
        pat: Pat,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// A block expression.
    Block(Block),
    /// `return (expr)?`.
    Return {
        /// Returned value.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `break (expr)?` (labels dropped).
    Break {
        /// Break value.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `continue` (labels dropped).
    Continue {
        /// 1-based line.
        line: u32,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter patterns (types dropped).
        params: Vec<Pat>,
        /// Body expression.
        body: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `name!(args)`. When the arguments parse as a comma-separated
    /// expression list, `args` holds them and `parsed` is true;
    /// otherwise (`matches!` patterns, custom grammar) `args` holds a
    /// best-effort list of call-shaped sub-expressions recovered by a
    /// token scan and `parsed` is false.
    MacroCall {
        /// Macro name (last path segment, no `!`).
        name: String,
        /// Argument expressions (see above).
        args: Vec<Expr>,
        /// Whether `args` is an exact parse of the argument tokens.
        parsed: bool,
        /// 1-based line.
        line: u32,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        /// Struct path segments.
        path: Vec<String>,
        /// `(name, value)` field initializers; shorthand fields repeat
        /// the name as a path expression.
        fields: Vec<(String, Expr)>,
        /// Functional-update base (`..base`).
        base: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `(a, b, ...)` — one-element tuples only with a trailing comma.
    Tuple {
        /// Elements.
        elems: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `[a, b, ...]` or `[elem; len]`.
    Array {
        /// Elements (for `[elem; len]`: the element then the length).
        elems: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `lo .. hi` / `lo ..= hi`, either side optional.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
}

impl Expr {
    /// The 1-based source line of the expression's first token.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::FieldAccess { line, .. }
            | Expr::Index { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Ref { line, .. }
            | Expr::Try { line, .. }
            | Expr::Cast { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::For { line, .. }
            | Expr::Return { line, .. }
            | Expr::Break { line, .. }
            | Expr::Continue { line }
            | Expr::Closure { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Range { line, .. } => *line,
            Expr::Block(b) => b.line,
        }
    }
}

/// A pattern.
#[derive(Debug)]
pub enum Pat {
    /// A binding: `x`, `mut x`, `ref x`, `x @ subpat`.
    Ident {
        /// Bound name.
        name: String,
        /// `@`-bound sub-pattern.
        sub: Option<Box<Pat>>,
    },
    /// `_`.
    Wild,
    /// A literal pattern (possibly negative).
    Lit(String),
    /// A unit path pattern: `None`, `AckLevel :: All`.
    Path(Vec<String>),
    /// `Some(x)`, `Err(e)`, tuple-struct patterns.
    TupleStruct {
        /// Path segments.
        path: Vec<String>,
        /// Element patterns.
        elems: Vec<Pat>,
    },
    /// `Struct { a, b: pat, .. }`.
    Struct {
        /// Path segments.
        path: Vec<String>,
        /// `(field, pattern)` pairs; shorthand repeats the name.
        fields: Vec<(String, Pat)>,
    },
    /// `(a, b)`.
    Tuple(Vec<Pat>),
    /// `[a, b, rest @ ..]`.
    Slice(Vec<Pat>),
    /// `&pat` / `&mut pat`.
    Ref(Box<Pat>),
    /// `a | b | c`.
    Or(Vec<Pat>),
    /// `lo ..= hi` and friends.
    Range,
    /// `..` in tuple/slice/struct position.
    Rest,
}

/// Calls `visit` on every expression in the block, pre-order,
/// descending into nested blocks, arms, and closures — but not into
/// nested items (those are collected as functions of their own).
pub fn walk_block<'a>(b: &'a Block, visit: &mut dyn FnMut(&'a Expr)) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(init) = init {
                    walk_expr(init, visit);
                }
                if let Some(else_block) = else_block {
                    walk_block(else_block, visit);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr(expr, visit),
            Stmt::Item(_) => {}
        }
    }
}

/// Calls `visit` on `e` and then every sub-expression, pre-order.
pub fn walk_expr<'a>(e: &'a Expr, visit: &mut dyn FnMut(&'a Expr)) {
    visit(e);
    match e {
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Continue { .. } => {}
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, visit);
            for a in args {
                walk_expr(a, visit);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, visit);
            for a in args {
                walk_expr(a, visit);
            }
        }
        Expr::FieldAccess { base, .. } => walk_expr(base, visit),
        Expr::Index { base, index, .. } => {
            walk_expr(base, visit);
            walk_expr(index, visit);
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, visit);
            walk_expr(rhs, visit);
        }
        Expr::Unary { operand, .. } => walk_expr(operand, visit),
        Expr::Ref { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            walk_expr(expr, visit)
        }
        Expr::If {
            cond, then, else_, ..
        } => {
            walk_expr(cond, visit);
            walk_block(then, visit);
            if let Some(e) = else_ {
                walk_expr(e, visit);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, visit);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, visit);
                }
                walk_expr(&arm.body, visit);
            }
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, visit);
            walk_block(body, visit);
        }
        Expr::Loop { body, .. } => walk_block(body, visit),
        Expr::For { iter, body, .. } => {
            walk_expr(iter, visit);
            walk_block(body, visit);
        }
        Expr::Block(b) => walk_block(b, visit),
        Expr::Return { value, .. } | Expr::Break { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, visit);
            }
        }
        Expr::Closure { body, .. } => walk_expr(body, visit),
        Expr::MacroCall { args, .. } => {
            for a in args {
                walk_expr(a, visit);
            }
        }
        Expr::StructLit { fields, base, .. } => {
            for (_, v) in fields {
                walk_expr(v, visit);
            }
            if let Some(b) = base {
                walk_expr(b, visit);
            }
        }
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            for e in elems {
                walk_expr(e, visit);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(lo) = lo {
                walk_expr(lo, visit);
            }
            if let Some(hi) = hi {
                walk_expr(hi, visit);
            }
        }
    }
}

impl Pat {
    /// Appends every name this pattern binds to `out` (`_`-patterns
    /// bind nothing; path patterns are matches, not bindings).
    pub fn bound_names(&self, out: &mut Vec<String>) {
        match self {
            Pat::Ident { name, sub } => {
                out.push(name.clone());
                if let Some(s) = sub {
                    s.bound_names(out);
                }
            }
            Pat::TupleStruct { elems, .. } => {
                for p in elems {
                    p.bound_names(out);
                }
            }
            Pat::Struct { fields, .. } => {
                for (_, p) in fields {
                    p.bound_names(out);
                }
            }
            Pat::Tuple(ps) | Pat::Slice(ps) | Pat::Or(ps) => {
                for p in ps {
                    p.bound_names(out);
                }
            }
            Pat::Ref(p) => p.bound_names(out),
            Pat::Wild | Pat::Lit(_) | Pat::Path(_) | Pat::Range | Pat::Rest => {}
        }
    }
}
