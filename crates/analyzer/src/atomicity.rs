//! Lint **atomicity**: interprocedural lock-gap atomicity analysis of
//! every ranked lockdep guard, plus the machine-readable report behind
//! `target/analysis/atomicity.json`.
//!
//! PR 8's per-partition lock split made *drop-and-reacquire* the
//! canonical hot-path shape: snapshot state under a brief
//! `cluster.state` read guard, `drop(st)`, then act under a
//! `partition.state` shard lock. Every value carried across that gap
//! is a potential stale-snapshot/TOCTOU hazard — the guard that made
//! it true is gone by the time it is used. This pass makes the gap
//! auditable:
//!
//! * **Taint.** Inside each function, every binding whose initializer
//!   mentions a live *ranked* guard variable (`let snap = st.brokers…`)
//!   is tainted by that guard's acquire site, transitively through
//!   assignments (`let leader = … snap …`).
//! * **Gap.** The guard dies at an explicit `drop(g)`, a shadowing
//!   `let`, or scope end ([`Op::Kill`] carries the line; `0` renders
//!   as "scope end").
//! * **Use.** A gap-crossing use is any consult of a tainted value
//!   *after* its source guard died and *inside* a later ranked
//!   critical section. Each use is classified:
//!   - **validated** — machine-recognized benign shapes: the carried
//!     value is itself the lock being re-acquired (`let ps =
//!     shard.part.lock()` — the `Arc` handle resolved under the old
//!     guard *is* the revalidation), or it flows into the new section
//!     only in argument/key position with the live guard re-read as
//!     the receiver (`slot.entries.insert(pos, (log_offset, c))` — the
//!     stale value keys fresh state instead of substituting for it),
//!     or plain arithmetic over an owned copy.
//!   - **stale-use** — the tainted value is the *receiver* of a
//!     consult (`brokers_online.get(b)`, indexing, a keyed lookup):
//!     the section reads a snapshot whose guard is gone. Also fires
//!     transitively when a stale value is passed to a workspace
//!     function whose own body consults the parameter (witness chain
//!     rides the call graph, ≤ [`CHAIN_CAP`] hops).
//!   - **unknown** — a consult exists but its interprocedural witness
//!     chain was truncated at [`CHAIN_CAP`] hops: the pass saw the
//!     sink but cannot render the full path, so it refuses to call the
//!     gap validated.
//!
//! Findings fire for stale-use and unknown gaps only; every finding
//! carries the full witness chain — read-site → drop-site → use —
//! with `file:line` per hop, and is suppressed by a reasoned
//! `// lint:allow(atomicity, reason=…)` above the use. The report
//! keeps *all* verdicts (including allowed stale uses), so the CI
//! census diff against `ci/atomicity-baseline.json` catches new gaps
//! even when individually allowed.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::callgraph::{CallGraph, CallSite};
use crate::cfg::{self, AcquireSite, Cfg, Op};
use crate::dataflow::{self, Analysis};
use crate::hotpath::HOT_ROOTS;
use crate::rules;
use crate::{Context, Finding, SourceData};

/// Atomicity verdict for one guard site. Ordered worst-first so the
/// report sorts stale uses to the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// At least one gap-crossing use consults stale guarded state.
    StaleUse,
    /// A gap-crossing consult exists but its witness chain was
    /// truncated; conservatively not validated.
    Unknown,
    /// Every gap-crossing use is machine-validated (or there is no
    /// gap at all).
    Validated,
}

impl Verdict {
    /// The report/JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::StaleUse => "stale-use",
            Verdict::Unknown => "unknown",
            Verdict::Validated => "validated",
        }
    }
}

/// One witness: a gap-crossing use of state derived from this guard.
#[derive(Debug, Clone)]
pub struct WitnessAccess {
    /// `reacquire`, `carried`, `stale-read` or `opaque`.
    pub kind: &'static str,
    /// The tainted binding that crossed the gap (`` `brokers_online` ``).
    pub access: String,
    /// `read file:line → drop file:line → use hop [→ callee hops]`.
    pub chain: String,
}

/// One ranked-guard acquire site with its gap census.
#[derive(Debug, Clone)]
pub struct GuardGap {
    /// Rank name (`cluster.state`, …).
    pub rank: &'static str,
    /// Rank order from `sim::lockdep::RANKS`.
    pub order: u32,
    /// Workspace-relative file of the acquire site.
    pub file: String,
    /// 1-based line of the acquire site.
    pub line: u32,
    /// Qualified name of the function holding the guard.
    pub function: String,
    /// Acquisition method (`lock`, `read`, `write`).
    pub method: String,
    /// Whether the holding function is in the hot-path closure.
    pub hot: bool,
    /// Whether any value derived from this guard crosses its drop into
    /// a later ranked critical section.
    pub gap: bool,
    /// Worst classification over the gap-crossing uses.
    pub verdict: Verdict,
    /// The uses the verdict rests on (capped, deterministic).
    pub witness: Vec<WitnessAccess>,
}

/// The atomicity report: every ranked-guard acquire site in the
/// workspace with its gap verdict and witnesses.
#[derive(Debug, Default)]
pub struct AtomicityReport {
    /// Per-site verdicts, sorted stale-use first, then by rank order
    /// (descending), file, line — fully deterministic.
    pub guards: Vec<GuardGap>,
}

impl AtomicityReport {
    /// The set of rank names with at least one analyzed acquire site.
    /// The drift test holds this against `sim::lockdep::RANKS`,
    /// [`rules::LOCK_FIELDS`] and the lock-cost/shardability
    /// inventories.
    pub fn inventory(&self) -> BTreeSet<&'static str> {
        self.guards.iter().map(|g| g.rank).collect()
    }

    /// `(rank, file, line)` of every analyzed site — compared 1:1 with
    /// the lock-cost guard table by the drift test.
    pub fn sites(&self) -> BTreeSet<(&'static str, &str, u32)> {
        self.guards
            .iter()
            .map(|g| (g.rank, g.file.as_str(), g.line))
            .collect()
    }

    /// Renders the `atomicity/v1` JSON document (hand-rolled — the
    /// build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"atomicity/v1\",\"guards\":[");
        for (i, g) in self.guards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let witness = g
                .witness
                .iter()
                .map(|w| {
                    format!(
                        "{{\"kind\":\"{}\",\"access\":\"{}\",\"chain\":\"{}\"}}",
                        esc(w.kind),
                        esc(&w.access),
                        esc(&w.chain)
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"rank\":\"{}\",\"order\":{},\"file\":\"{}\",\"line\":{},\
                 \"function\":\"{}\",\"method\":\"{}\",\"hot\":{},\"gap\":{},\
                 \"verdict\":\"{}\",\"witness\":[{witness}]}}",
                esc(g.rank),
                g.order,
                esc(&g.file),
                g.line,
                esc(&g.function),
                esc(&g.method),
                g.hot,
                g.gap,
                g.verdict.as_str()
            ));
        }
        out.push_str("],\"ranks\":[");
        // Per-rank gap census: the audit work-list at a glance.
        let mut totals: BTreeMap<&'static str, (u32, u32, u32, u32, u32, u32)> = BTreeMap::new();
        for g in &self.guards {
            let entry = totals.entry(g.rank).or_insert((g.order, 0, 0, 0, 0, 0));
            entry.1 += 1;
            if g.gap {
                entry.2 += 1;
                match g.verdict {
                    Verdict::Validated => entry.3 += 1,
                    Verdict::StaleUse => entry.4 += 1,
                    Verdict::Unknown => entry.5 += 1,
                }
            }
        }
        let mut ranks: Vec<_> = totals.into_iter().collect();
        ranks.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
        for (i, (rank, (order, sites, gaps, validated, stale, unknown))) in ranks.iter().enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let verdict = if *stale > 0 {
                "stale-use"
            } else if *unknown > 0 {
                "unknown"
            } else {
                "validated"
            };
            out.push_str(&format!(
                "{{\"rank\":\"{}\",\"order\":{order},\"sites\":{sites},\"gaps\":{gaps},\
                 \"validated\":{validated},\"stale\":{stale},\"unknown\":{unknown},\
                 \"verdict\":\"{verdict}\"}}",
                esc(rank)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// RFC 8259 string escape (subset: the characters our identifiers and
/// paths can contain).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Cap on witness entries per guard.
const WITNESS_CAP: usize = 4;

/// Cap on the hops of a callee-carried witness chain. A consult deeper
/// than this classifies the gap `unknown` rather than silently passing.
const CHAIN_CAP: usize = 6;

/// One function body prepared for analysis.
struct FnBody {
    /// Index into `graph.fns`.
    id: usize,
    /// Workspace-relative file.
    rel: String,
    cfg: Cfg,
    /// `(rank, order)` per acquire site, `None` for unranked.
    site_rank: Vec<Option<(&'static str, u32)>>,
    /// Parameter binding names (`self` excluded).
    params: Vec<String>,
}

/// A function's parameter-consult evidence: if a caller passes a stale
/// value as an argument, this function reads it as state (receiver of
/// a lookup/method call), not just as a key.
#[derive(Debug, Clone)]
struct Consult {
    /// The consulted parameter-derived name, for messages.
    access: String,
    /// `qualified (file:line)` hops from this function to the consult.
    chain: Vec<String>,
    /// Whether the chain hit [`CHAIN_CAP`] and was cut.
    truncated: bool,
}

/// The combined held-locks + guard-taint forward may-analysis.
///
/// `held` mirrors [`rules::HeldLocks`]; `taint` maps each binding to
/// the ranked acquire sites its value was derived from. The binding of
/// a *new* guard is never tainted by its own initializer (`let ps =
/// shard.part.lock()` — `ps` is the fresh guard, not a stale value),
/// which is exactly the reacquire-validation shape.
#[derive(Clone, PartialEq)]
struct GapFact {
    held: BTreeSet<usize>,
    taint: BTreeMap<String, BTreeSet<usize>>,
}

struct GapState<'a> {
    acquires: &'a [AcquireSite],
    site_rank: &'a [Option<(&'static str, u32)>],
}

impl GapState<'_> {
    /// The ranked sites `name`'s value derives from, per `fact`:
    /// transitive taint plus direct guard-variable mentions.
    fn sources(&self, fact: &GapFact, name: &str) -> BTreeSet<usize> {
        let mut out: BTreeSet<usize> = fact.taint.get(name).cloned().unwrap_or_default();
        for &j in &fact.held {
            if self.site_rank[j].is_some() && self.acquires[j].var.as_deref() == Some(name) {
                out.insert(j);
            }
        }
        out
    }

    /// The stale subset of [`Self::sources`]: sites whose guard is no
    /// longer held.
    fn stale(&self, fact: &GapFact, name: &str) -> BTreeSet<usize> {
        self.sources(fact, name)
            .into_iter()
            .filter(|i| !fact.held.contains(i))
            .collect()
    }

    /// Whether `name` is the variable of a live ranked guard.
    fn is_live_guard(&self, fact: &GapFact, name: &str) -> bool {
        fact.held
            .iter()
            .any(|&j| self.site_rank[j].is_some() && self.acquires[j].var.as_deref() == Some(name))
    }
}

impl Analysis for GapState<'_> {
    type Fact = GapFact;
    const BACKWARD: bool = false;

    fn boundary(&self) -> GapFact {
        GapFact {
            held: BTreeSet::new(),
            taint: BTreeMap::new(),
        }
    }

    fn init(&self) -> GapFact {
        self.boundary()
    }

    fn join(&self, fact: &mut GapFact, other: &GapFact) -> bool {
        let mut changed = false;
        for &i in &other.held {
            changed |= fact.held.insert(i);
        }
        for (k, v) in &other.taint {
            let entry = fact.taint.entry(k.clone()).or_default();
            for &i in v {
                changed |= entry.insert(i);
            }
        }
        changed
    }

    fn transfer(&self, op: &Op, fact: &mut GapFact) {
        match op {
            Op::Acquire(i) => {
                fact.held.insert(*i);
            }
            Op::Kill { var, .. } => {
                fact.held
                    .retain(|&i| self.acquires[i].var.as_deref() != Some(var.as_str()));
                fact.taint.remove(var);
            }
            Op::KillTemps => {
                fact.held.retain(|&i| self.acquires[i].var.is_some());
            }
            Op::Assign { to, froms, .. } => {
                // A binding that *is* a just-acquired guard is the
                // fresh guard itself, never stale.
                if self.is_live_guard(fact, to) {
                    fact.taint.remove(to);
                    return;
                }
                let mut srcs = BTreeSet::new();
                for f in froms {
                    srcs.extend(self.sources(fact, f));
                }
                // A binding read through a *live* guard derives from
                // fresh state; stale names in the mix are key/predicate
                // position (`ps.replicas.get_mut(&leader)`), flagged at
                // their own consult sites, not here.
                if froms.iter().any(|f| self.is_live_guard(fact, f)) {
                    srcs.retain(|i| fact.held.contains(i));
                }
                if srcs.is_empty() {
                    fact.taint.remove(to);
                } else {
                    fact.taint.insert(to.clone(), srcs);
                }
            }
            _ => {}
        }
    }
}

/// One recorded gap-crossing use of state sourced at a guard site.
#[derive(Clone)]
struct UseRec {
    kind: &'static str,
    access: String,
    /// Use line in the guard's own file (already anchored).
    line: u32,
    /// Callee hops for interprocedural consults.
    callee_chain: Vec<String>,
    verdict: Verdict,
    /// Rank of the live section the use executes in.
    section: &'static str,
    /// The use op carried no line of its own (`.get()`/`.len()` lower
    /// to line-less observations) and `line` is the enclosing
    /// section's acquire line. Dropped when the same access also has a
    /// real-line record (the chained call on the same expression).
    synthetic: bool,
}

/// Runs the pass: appends lint findings to `out` and returns the full
/// atomicity report (empty when the tree has no rank table).
pub fn atomicity(
    ctx: &Context,
    graph: &CallGraph,
    files: &[SourceData],
    out: &mut Vec<Finding>,
) -> AtomicityReport {
    let Some(ranks) = &ctx.ranks else {
        return AtomicityReport::default();
    };
    let order_of = |rank: &str| {
        ranks
            .entries
            .iter()
            .find(|(n, _)| n == rank)
            .map(|(_, o)| *o)
    };

    let mut by_site: HashMap<(&str, u32, &str), usize> = HashMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        by_site.insert((f.file.as_str(), f.line, f.name.as_str()), i);
    }

    // Lower every non-test function once.
    let mut bodies: Vec<FnBody> = Vec::new();
    for file in files {
        let Some(ast) = &file.ast else { continue };
        let fields = rules::ranked_fields(&file.rel);
        rules::for_each_fn(&ast.items, &mut |f| {
            let Some(&id) = by_site.get(&(file.rel.as_str(), f.line, f.name.as_str())) else {
                return;
            };
            if graph.fns[id].in_test || f.body.is_none() {
                return;
            }
            let mut params = Vec::new();
            for p in &f.params {
                p.pat.bound_names(&mut params);
            }
            params.retain(|p| p != "self");
            let g = cfg::lower_fn(f);
            let site_rank = rules::site_ranks(&g, &fields, &order_of);
            bodies.push(FnBody {
                id,
                rel: file.rel.clone(),
                cfg: g,
                site_rank,
                params,
            });
        });
    }

    // Phase 1: per-function parameter-consult summaries — does this
    // function read a parameter-derived value as *state* (receiver
    // position)? Direct evidence first, then a fixpoint propagating a
    // callee's consult up through argument-passing call sites.
    let mut consults: Vec<Option<Consult>> = vec![None; graph.fns.len()];
    for body in &bodies {
        if consults[body.id].is_some() || body.params.is_empty() {
            continue;
        }
        let derived = derived_names(body);
        let guards = guard_vars(body);
        'body: for blk in &body.cfg.blocks {
            for op in &blk.ops {
                let (recv_root, line) = match op {
                    Op::Call {
                        recv_names, line, ..
                    } => {
                        // A receiver chain rooted at one of this body's
                        // own guards is a fresh re-read, not a
                        // parameter consult.
                        if recv_names.iter().any(|n| guards.contains(n.as_str())) {
                            continue;
                        }
                        let Some(hit) = recv_names.iter().find(|n| derived.contains(*n)) else {
                            continue;
                        };
                        (hit.clone(), *line)
                    }
                    Op::Index { recv, line, .. } => {
                        let root = recv.split(['.', '[']).next().unwrap_or(recv);
                        if !derived.contains(root) {
                            continue;
                        }
                        (root.to_string(), *line)
                    }
                    Op::LenObserve { recv } => {
                        let root = recv.split(['.', '[']).next().unwrap_or(recv);
                        if !derived.contains(root) {
                            continue;
                        }
                        (root.to_string(), graph.fns[body.id].line)
                    }
                    _ => continue,
                };
                consults[body.id] = Some(Consult {
                    access: recv_root,
                    chain: vec![hop(graph, body, line)],
                    truncated: false,
                });
                break 'body;
            }
        }
    }
    loop {
        let mut changed = false;
        for body in &bodies {
            if consults[body.id].is_some() || body.params.is_empty() {
                continue;
            }
            let derived = derived_names(body);
            'calls: for blk in &body.cfg.blocks {
                for op in &blk.ops {
                    let Op::Call {
                        name,
                        arity,
                        is_method,
                        qual,
                        arg_names,
                        line,
                        ..
                    } = op
                    else {
                        continue;
                    };
                    if !arg_names.iter().any(|n| derived.contains(n)) {
                        continue;
                    }
                    let site = CallSite {
                        name: name.clone(),
                        arity: *arity,
                        is_method: *is_method,
                        qual: qual.clone(),
                        line: *line,
                    };
                    for t in graph.resolve(body.id, &site) {
                        let Some(w) = &consults[t] else { continue };
                        let mut chain = vec![hop(graph, body, *line)];
                        let truncated = w.truncated || w.chain.len() + 1 > CHAIN_CAP;
                        chain.extend(w.chain.iter().take(CHAIN_CAP - 1).cloned());
                        consults[body.id] = Some(Consult {
                            access: w.access.clone(),
                            chain,
                            truncated,
                        });
                        changed = true;
                        break 'calls;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: per-body gap analysis via the combined held+taint
    // dataflow.
    let reach = graph.reach_from_named(HOT_ROOTS);
    let mut report = AtomicityReport::default();
    for body in &bodies {
        if !body.site_rank.iter().any(Option::is_some) {
            continue;
        }
        let analysis = GapState {
            acquires: &body.cfg.acquires,
            site_rank: &body.site_rank,
        };
        let solved = dataflow::solve(&body.cfg, &analysis);
        let nsites = body.cfg.acquires.len();
        // Where each site's taint was first created, per binding.
        let mut reads: HashMap<(usize, String), u32> = HashMap::new();
        // Where each site's guard died.
        let mut drops: HashMap<usize, u32> = HashMap::new();
        let mut uses: Vec<Vec<UseRec>> = vec![Vec::new(); nsites];
        for blk in 0..body.cfg.blocks.len() {
            dataflow::walk_ops(&body.cfg, &analysis, &solved, blk, |_, op, fact| {
                record_op(
                    body, graph, &analysis, &consults, op, fact, &mut reads, &mut drops, &mut uses,
                );
            });
        }
        for (i, site) in body.cfg.acquires.iter().enumerate() {
            let Some((rank, order)) = body.site_rank[i] else {
                continue;
            };
            let mut recs = std::mem::take(&mut uses[i]);
            recs.sort_by(|a, b| {
                a.verdict
                    .cmp(&b.verdict)
                    .then(a.line.cmp(&b.line))
                    .then(a.access.cmp(&b.access))
            });
            recs.dedup_by(|a, b| a.access == b.access && a.line == b.line && a.kind == b.kind);
            // A line-less observation (`.get()`) anchored at the
            // acquire duplicates the chained call on the same
            // expression; keep the real-line record.
            let real: Vec<(String, Verdict)> = recs
                .iter()
                .filter(|r| !r.synthetic)
                .map(|r| (r.access.clone(), r.verdict))
                .collect();
            recs.retain(|r| !r.synthetic || !real.contains(&(r.access.clone(), r.verdict)));
            let verdict = recs
                .iter()
                .map(|r| r.verdict)
                .min()
                .unwrap_or(Verdict::Validated);
            let gap = !recs.is_empty();
            let drop_hop = match drops.get(&i) {
                Some(0) | None => "scope end".to_string(),
                Some(l) => format!("drop {}:{l}", body.rel),
            };
            let mut witness = Vec::new();
            for r in recs.iter().take(WITNESS_CAP) {
                let read_hop = match reads.get(&(i, r.access.clone())) {
                    Some(l) if *l > 0 => format!("read {}:{l}", body.rel),
                    _ => format!("read {}:{}", body.rel, site.line),
                };
                let mut chain = format!(
                    "{read_hop} → {drop_hop} → {} ({}:{})",
                    graph.fns[body.id].qualified(),
                    body.rel,
                    r.line
                );
                for h in &r.callee_chain {
                    chain.push_str(" → ");
                    chain.push_str(h);
                }
                witness.push(WitnessAccess {
                    kind: r.kind,
                    access: r.access.clone(),
                    chain,
                });
            }
            // Findings: stale/unknown uses, anchored at the use line so
            // a lint:allow sits directly above the consult.
            for (w, r) in witness.iter().zip(recs.iter()) {
                if r.verdict == Verdict::Validated {
                    continue;
                }
                let what = if r.verdict == Verdict::Unknown {
                    "reaches an opaque consult (witness chain truncated)"
                } else {
                    "is consulted as state"
                };
                out.push(Finding {
                    file: body.rel.clone(),
                    line: r.line,
                    lint: "atomicity",
                    message: format!(
                        "lock-gap atomicity: `{}` was derived under \"{rank}\" ({}:{}) and {what} \
                         inside the \"{}\" section after that guard dropped — re-validate it \
                         under the live guard or carry lint:allow(atomicity, reason=…) \
                         (witness: {}; full census: target/analysis/atomicity.json)",
                        r.access, body.rel, site.line, r.section, w.chain,
                    ),
                });
            }
            report.guards.push(GuardGap {
                rank,
                order,
                file: body.rel.clone(),
                line: site.line,
                function: graph.fns[body.id].qualified(),
                method: site.method.clone(),
                hot: reach.reachable[body.id],
                gap,
                verdict,
                witness,
            });
        }
    }
    report.guards.sort_by(|a, b| {
        a.verdict
            .cmp(&b.verdict)
            .then(b.order.cmp(&a.order))
            .then(a.file.cmp(&b.file))
            .then(a.line.cmp(&b.line))
    });
    report
}

/// Records the gap-relevant effect of one op: taint read-sites, guard
/// drop-sites, and classified gap-crossing uses.
#[allow(clippy::too_many_arguments)]
fn record_op(
    body: &FnBody,
    graph: &CallGraph,
    gs: &GapState<'_>,
    consults: &[Option<Consult>],
    op: &Op,
    fact: &GapFact,
    reads: &mut HashMap<(usize, String), u32>,
    drops: &mut HashMap<usize, u32>,
    uses: &mut Vec<Vec<UseRec>>,
) {
    // The innermost live ranked section, if any: the anchor for uses
    // that carry no line of their own.
    let section = fact
        .held
        .iter()
        .rev()
        .find(|&&j| body.site_rank[j].is_some());
    let push_use = |uses: &mut Vec<Vec<UseRec>>,
                    srcs: &BTreeSet<usize>,
                    kind: &'static str,
                    access: &str,
                    line: u32,
                    callee_chain: Vec<String>,
                    verdict: Verdict,
                    section: &'static str,
                    synthetic: bool| {
        for &i in srcs {
            if uses[i].len() < WITNESS_CAP * 4 {
                uses[i].push(UseRec {
                    kind,
                    access: access.to_string(),
                    line,
                    callee_chain: callee_chain.clone(),
                    verdict,
                    section,
                    synthetic,
                });
            }
        }
    };
    match op {
        Op::Kill { var, line } => {
            for &j in &fact.held {
                if body.cfg.acquires[j].var.as_deref() == Some(var.as_str()) {
                    let entry = drops.entry(j).or_insert(*line);
                    if *entry == 0 {
                        *entry = *line;
                    }
                }
            }
        }
        Op::Assign { to, froms, line } => {
            if gs.is_live_guard(fact, to) {
                // Reacquire-validation: the carried handle becomes the
                // next guard (`let ps = shard.part.lock()`).
                let Some((section_rank, _)) = body
                    .site_rank
                    .iter()
                    .zip(&body.cfg.acquires)
                    .filter_map(|(r, s)| r.map(|(n, _)| (n, s)))
                    .find(|(_, s)| s.var.as_deref() == Some(to.as_str()))
                else {
                    return;
                };
                for f in froms {
                    let stale = gs.stale(fact, f);
                    if !stale.is_empty() {
                        push_use(
                            uses,
                            &stale,
                            "reacquire",
                            f,
                            *line,
                            Vec::new(),
                            Verdict::Validated,
                            section_rank,
                            false,
                        );
                    }
                }
                return;
            }
            // Taint creation/propagation: remember the read site.
            for f in froms {
                for i in gs.sources(fact, f) {
                    let entry = reads.entry((i, to.clone())).or_insert(*line);
                    if *entry == 0 {
                        *entry = *line;
                    }
                }
            }
        }
        Op::Call {
            name,
            arity,
            is_method,
            qual,
            recv_names,
            arg_names,
            line,
        } => {
            let Some(&sec) = section else { return };
            let section_rank = body.site_rank[sec].map(|(n, _)| n).unwrap_or("?");
            // A receiver chain rooted at a live guard is a fresh
            // re-read, never stale (field names can shadow tainted
            // locals: `ps.leader` mentions `leader`).
            if recv_names.iter().any(|n| gs.is_live_guard(fact, n)) {
                return;
            }
            if let Some(n) = recv_names.iter().find(|n| !gs.stale(fact, n).is_empty()) {
                let stale = gs.stale(fact, n);
                push_use(
                    uses,
                    &stale,
                    "stale-read",
                    n,
                    *line,
                    Vec::new(),
                    Verdict::StaleUse,
                    section_rank,
                    false,
                );
                return;
            }
            let stale_args: Vec<&String> = arg_names
                .iter()
                .filter(|n| !gs.stale(fact, n).is_empty())
                .collect();
            if stale_args.is_empty() {
                return;
            }
            // Passing the live guard alongside means the callee reads
            // fresh state keyed by the carried value.
            if arg_names.iter().any(|n| gs.is_live_guard(fact, n)) {
                let stale = gs.stale(fact, stale_args[0]);
                push_use(
                    uses,
                    &stale,
                    "carried",
                    stale_args[0],
                    *line,
                    Vec::new(),
                    Verdict::Validated,
                    section_rank,
                    false,
                );
                return;
            }
            // A workspace callee that consults the parameter turns the
            // carried value back into state.
            let site = CallSite {
                name: name.clone(),
                arity: *arity,
                is_method: *is_method,
                qual: qual.clone(),
                line: *line,
            };
            for t in graph.resolve(body.id, &site) {
                if let Some(c) = &consults[t] {
                    let stale = gs.stale(fact, stale_args[0]);
                    let verdict = if c.truncated {
                        Verdict::Unknown
                    } else {
                        Verdict::StaleUse
                    };
                    let kind = if c.truncated { "opaque" } else { "stale-read" };
                    push_use(
                        uses,
                        &stale,
                        kind,
                        stale_args[0],
                        *line,
                        c.chain.clone(),
                        verdict,
                        section_rank,
                        false,
                    );
                    return;
                }
            }
            let stale = gs.stale(fact, stale_args[0]);
            push_use(
                uses,
                &stale,
                "carried",
                stale_args[0],
                *line,
                Vec::new(),
                Verdict::Validated,
                section_rank,
                false,
            );
        }
        Op::Index { recv, line, .. } => {
            let Some(&sec) = section else { return };
            let section_rank = body.site_rank[sec].map(|(n, _)| n).unwrap_or("?");
            let root = recv.split(['.', '[']).next().unwrap_or(recv);
            let stale = gs.stale(fact, root);
            if !stale.is_empty() && !gs.is_live_guard(fact, root) {
                push_use(
                    uses,
                    &stale,
                    "stale-read",
                    root,
                    *line,
                    Vec::new(),
                    Verdict::StaleUse,
                    section_rank,
                    false,
                );
            }
        }
        Op::LenObserve { recv } => {
            let Some(&sec) = section else { return };
            let section_rank = body.site_rank[sec].map(|(n, _)| n).unwrap_or("?");
            let root = recv.split(['.', '[']).next().unwrap_or(recv);
            let stale = gs.stale(fact, root);
            if !stale.is_empty() && !gs.is_live_guard(fact, root) {
                // No line of its own: anchor at the live section's
                // acquire so an allow above the acquire covers it.
                let line = body.cfg.acquires[sec].line;
                push_use(
                    uses,
                    &stale,
                    "stale-read",
                    root,
                    line,
                    Vec::new(),
                    Verdict::StaleUse,
                    section_rank,
                    true,
                );
            }
        }
        Op::Arith { names, line, .. } => {
            let Some(&sec) = section else { return };
            let section_rank = body.site_rank[sec].map(|(n, _)| n).unwrap_or("?");
            if let Some(n) = names.iter().find(|n| !gs.stale(fact, n).is_empty()) {
                let stale = gs.stale(fact, n);
                push_use(
                    uses,
                    &stale,
                    "carried",
                    n,
                    *line,
                    Vec::new(),
                    Verdict::Validated,
                    section_rank,
                    false,
                );
            }
        }
        _ => {}
    }
}

/// The flow-insensitive closure of parameter-derived names inside one
/// function (for consult summaries). A binding read through one of the
/// function's *own* guards (`let Some(t) = st.topics.get(topic)`) is a
/// fresh re-read keyed by the parameter — revalidation, not
/// derivation — so guard-sourced assigns do not propagate.
fn derived_names(body: &FnBody) -> BTreeSet<String> {
    let guards = guard_vars(body);
    let mut derived: BTreeSet<String> = body.params.iter().cloned().collect();
    loop {
        let mut changed = false;
        for blk in &body.cfg.blocks {
            for op in &blk.ops {
                if let Op::Assign { to, froms, .. } = op {
                    if !derived.contains(to)
                        && froms.iter().any(|n| derived.contains(n))
                        && !froms.iter().any(|n| guards.contains(n.as_str()))
                    {
                        derived.insert(to.clone());
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return derived;
        }
    }
}

/// The variables of this body's ranked guard acquire sites.
fn guard_vars(body: &FnBody) -> BTreeSet<&str> {
    body.cfg
        .acquires
        .iter()
        .zip(&body.site_rank)
        .filter(|(_, r)| r.is_some())
        .filter_map(|(s, _)| s.var.as_deref())
        .collect()
}

/// One witness-chain hop: `qualified (file:line)`.
fn hop(graph: &CallGraph, body: &FnBody, line: u32) -> String {
    format!("{} ({}:{line})", graph.fns[body.id].qualified(), body.rel)
}
