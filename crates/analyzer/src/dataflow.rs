//! A small generic worklist solver over [`crate::cfg::Cfg`].
//!
//! Analyses implement [`Analysis`]; the solver iterates to a fixpoint
//! in either direction. Facts must form a join-semilattice with a
//! monotone transfer function; since every fact domain here is a
//! finite set of names/sites bounded by the function's source,
//! termination is immediate.

use crate::cfg::{Cfg, Op};

/// One dataflow analysis: a fact lattice plus a per-op transfer
/// function.
pub trait Analysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Direction: `false` = forward (entry → exit), `true` = backward.
    const BACKWARD: bool;

    /// Initial fact for the boundary block (the entry block for a
    /// forward analysis, the exit block for a backward one).
    fn boundary(&self) -> Self::Fact;

    /// Initial fact for every other block before any join ("unvisited"
    /// — for a may-analysis the empty set, for a must-analysis a top
    /// marker such as `None`).
    fn init(&self) -> Self::Fact;

    /// Joins `other` into `fact`; returns whether `fact` changed.
    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Applies one op to the fact in the direction of the analysis.
    fn transfer(&self, op: &Op, fact: &mut Self::Fact);
}

/// Runs `analysis` to fixpoint. Returns, for each block, the fact at
/// its *input boundary*: the block start for a forward analysis, the
/// block end for a backward one. Per-op facts inside a block are
/// recovered by replaying [`Analysis::transfer`] from that boundary
/// (see [`walk_ops`]).
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Vec<A::Fact> {
    let n = cfg.blocks.len();
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();
    let boundary_block = if A::BACKWARD { cfg.exit } else { cfg.entry };
    input[boundary_block] = analysis.boundary();

    // Edges in the direction of propagation: forward uses succs as-is;
    // backward flips them.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for &s in &blk.succs {
            if A::BACKWARD {
                out_edges[s].push(b);
            } else {
                out_edges[b].push(s);
            }
        }
    }

    let mut work: Vec<usize> = (0..n).collect();
    let mut on_work = vec![true; n];
    while let Some(b) = work.pop() {
        on_work[b] = false;
        // Fact after this block's ops, in propagation order.
        let mut fact = input[b].clone();
        if A::BACKWARD {
            for op in cfg.blocks[b].ops.iter().rev() {
                analysis.transfer(op, &mut fact);
            }
        } else {
            for op in &cfg.blocks[b].ops {
                analysis.transfer(op, &mut fact);
            }
        }
        for &t in &out_edges[b] {
            if analysis.join(&mut input[t], &fact) && !on_work[t] {
                on_work[t] = true;
                work.push(t);
            }
        }
    }
    input
}

/// Replays a solved analysis over one block's ops, calling `visit`
/// with each op and the fact *before* it in the analysis direction
/// (for a backward analysis, "before" means the fact that holds just
/// after the op in execution order).
pub fn walk_ops<A: Analysis>(
    cfg: &Cfg,
    analysis: &A,
    input: &[A::Fact],
    block: usize,
    mut visit: impl FnMut(usize, &Op, &A::Fact),
) {
    let mut fact = input[block].clone();
    let ops = &cfg.blocks[block].ops;
    if A::BACKWARD {
        for (i, op) in ops.iter().enumerate().rev() {
            visit(i, op, &fact);
            analysis.transfer(op, &mut fact);
        }
    } else {
        for (i, op) in ops.iter().enumerate() {
            visit(i, op, &fact);
            analysis.transfer(op, &mut fact);
        }
    }
}
