//! Recursive-descent parser: token stream → [`crate::ast`].
//!
//! Dependency-free (no `syn`), built directly on the lexer in
//! [`crate::lexer`]. The grammar covered is the subset of Rust this
//! workspace uses — which the parser-over-the-whole-tree test keeps
//! honest: every `.rs` file under `crates/*/src` must parse without
//! error, so any new construct added to the codebase that the parser
//! cannot handle fails CI until the parser learns it.
//!
//! Simplifications (deliberate, see `ast` module docs): types are
//! captured as flattened text, generics/lifetimes/attributes are
//! skipped, and multi-character operators are re-glued from the
//! lexer's single-character punctuation via source-position adjacency
//! (`Token::pos`), so `a ==b` parses while `a = = b` would not — the
//! latter is not valid Rust anyway.

use crate::ast::{Arm, Block, Expr, Field, File, Fn, Item, Param, Pat, Stmt, Struct};
use crate::lexer::{Token, TokenKind};

/// A parse failure: the line it happened on and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parses a whole file's token stream into an AST.
pub fn parse_file(tokens: &[Token]) -> Result<File, ParseError> {
    let mut p = Parser { toks: tokens, i: 0 };
    let mut items = Vec::new();
    while p.cur().is_some() {
        match p.parse_item()? {
            Some(item) => items.push(item),
            None => break,
        }
    }
    if let Some(t) = p.cur() {
        return Err(p.err_at(t.line, format!("unexpected token {:?} after items", t.text)));
    }
    Ok(File { items })
}

/// Parses a standalone expression list (used for macro arguments and
/// by unit tests). Requires the whole token slice to be consumed.
pub fn parse_expr_list(tokens: &[Token]) -> PResult<Vec<Expr>> {
    let mut p = Parser { toks: tokens, i: 0 };
    let mut out = Vec::new();
    while p.cur().is_some() {
        out.push(p.expr(false)?);
        if !p.eat_punct(',') {
            break;
        }
    }
    match p.cur() {
        None => Ok(out),
        Some(t) => Err(p.err_at(t.line, "trailing tokens after expression list".into())),
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
}

const MAX_DEPTH_ERR: &str = "nesting too deep";

impl<'a> Parser<'a> {
    // ----- cursor helpers -------------------------------------------------

    fn cur(&self) -> Option<&'a Token> {
        self.toks.get(self.i)
    }

    fn peek(&self, n: usize) -> Option<&'a Token> {
        self.toks.get(self.i + n)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.cur()
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn err_at(&self, line: u32, msg: String) -> ParseError {
        ParseError { line, msg }
    }

    fn at_punct(&self, c: char) -> bool {
        self.cur().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.cur().is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> PResult<&'a Token> {
        match self.cur() {
            Some(t) if t.is_punct(c) => {
                self.i += 1;
                Ok(t)
            }
            Some(t) => Err(self.err_at(t.line, format!("expected `{c}`, found {:?}", t.text))),
            None => Err(self.err(format!("expected `{c}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> PResult<&'a Token> {
        match self.cur() {
            Some(t) if t.kind == TokenKind::Ident => {
                self.i += 1;
                Ok(t)
            }
            Some(t) => Err(self.err_at(t.line, format!("expected identifier, found {:?}", t.text))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    /// Whether the punctuation sequence `s` starts at offset `n`, with
    /// every character source-adjacent to the previous one.
    fn glued_at(&self, n: usize, s: &str) -> bool {
        let mut prev: Option<&Token> = None;
        for (k, c) in s.chars().enumerate() {
            let Some(t) = self.peek(n + k) else {
                return false;
            };
            if !t.is_punct(c) {
                return false;
            }
            if let Some(p) = prev {
                if t.pos != p.pos + 1 || t.line != p.line {
                    return false;
                }
            }
            prev = Some(t);
        }
        true
    }

    fn glued(&self, s: &str) -> bool {
        self.glued_at(0, s)
    }

    fn eat_glued(&mut self, s: &str) -> bool {
        if self.glued(s) {
            self.i += s.chars().count();
            true
        } else {
            false
        }
    }

    fn expect_glued(&mut self, s: &str) -> PResult<()> {
        if self.eat_glued(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    // ----- attributes / generics / type text ------------------------------

    /// Skips any run of `#[...]` / `#![...]` attributes.
    fn skip_attrs(&mut self) -> PResult<()> {
        while self.at_punct('#') {
            let save = self.i;
            self.i += 1;
            self.eat_punct('!');
            if !self.at_punct('[') {
                // `#` not starting an attribute — back out.
                self.i = save;
                break;
            }
            self.skip_balanced('[', ']')?;
        }
        Ok(())
    }

    /// With the cursor on the opening delimiter, skips past its
    /// balanced match (tracking all three delimiter kinds).
    fn skip_balanced(&mut self, open: char, close: char) -> PResult<()> {
        let start_line = self.line();
        self.expect_punct(open)?;
        let mut depth = 1usize;
        while depth > 0 {
            let Some(t) = self.bump() else {
                return Err(self.err_at(start_line, format!("unclosed `{open}`")));
            };
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
            }
        }
        Ok(())
    }

    /// Skips a `<...>` generic parameter/argument list if the cursor
    /// is on `<`. `->` arrows inside (`F: Fn() -> u64`) are glued so
    /// their `>` does not close the list.
    fn skip_generics(&mut self) -> PResult<()> {
        if !self.at_punct('<') {
            return Ok(());
        }
        let start_line = self.line();
        self.i += 1;
        let mut depth = 1usize;
        while depth > 0 {
            if self.glued("->") {
                self.i += 2;
                continue;
            }
            let Some(t) = self.bump() else {
                return Err(self.err_at(start_line, "unclosed `<`".into()));
            };
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
            } else if t.is_punct('(') {
                self.i -= 1;
                self.skip_balanced('(', ')')?;
            }
        }
        Ok(())
    }

    /// Consumes type-position tokens as flattened text, stopping at
    /// any of `stop_puncts` / `stop_idents` at zero delimiter depth.
    fn type_text(&mut self, stop_puncts: &[char], stop_idents: &[&str]) -> PResult<String> {
        let mut out = String::new();
        let mut paren = 0i32;
        let mut brack = 0i32;
        let mut angle = 0i32;
        loop {
            if self.glued("->") {
                out.push_str(" ->");
                self.i += 2;
                continue;
            }
            let Some(t) = self.cur() else {
                break;
            };
            let at_top = paren == 0 && brack == 0 && angle == 0;
            if at_top {
                if t.kind == TokenKind::Punct
                    && t.text
                        .chars()
                        .next()
                        .is_some_and(|c| stop_puncts.contains(&c))
                {
                    break;
                }
                if t.kind == TokenKind::Ident && stop_idents.contains(&t.text.as_str()) {
                    break;
                }
                // A brace in type position at top level always ends the
                // type (function body, struct body).
                if t.is_punct('{') || t.is_punct('}') {
                    break;
                }
            }
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                if at_top {
                    break;
                }
                paren -= 1;
            } else if t.is_punct('[') {
                brack += 1;
            } else if t.is_punct(']') {
                if at_top {
                    break;
                }
                brack -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&t.text);
            self.i += 1;
        }
        Ok(out)
    }

    // ----- items ----------------------------------------------------------

    /// Parses one item. Returns `None` when the cursor sits on a `}`
    /// (end of the enclosing mod/impl/trait body) or at end of input.
    fn parse_item(&mut self) -> PResult<Option<Item>> {
        self.skip_attrs()?;
        if self.cur().is_none() || self.at_punct('}') {
            return Ok(None);
        }
        let is_pub = self.parse_visibility()?;
        let Some(t) = self.cur() else {
            return Err(self.err("expected item, found end of input"));
        };
        let line = t.line;
        // Function qualifiers: `const fn`, `async fn`, `unsafe fn`.
        if matches!(t.text.as_str(), "const" | "async" | "unsafe")
            && self.peek(1).is_some_and(|n| n.is_ident("fn"))
        {
            self.i += 1;
            return Ok(Some(Item::Fn(self.parse_fn(is_pub)?)));
        }
        match t.text.as_str() {
            "fn" => Ok(Some(Item::Fn(self.parse_fn(is_pub)?))),
            "struct" => Ok(Some(self.parse_struct()?)),
            "enum" | "union" => {
                self.i += 1;
                self.expect_ident()?;
                self.skip_generics()?;
                self.type_text(&[';'], &[])?; // where clause, if any
                if !self.eat_punct(';') {
                    self.skip_balanced('{', '}')?;
                }
                Ok(Some(Item::Other { line }))
            }
            "impl" => Ok(Some(self.parse_impl(line)?)),
            "trait" => Ok(Some(self.parse_trait(line)?)),
            "mod" => {
                self.i += 1;
                let name = self.expect_ident()?.text.clone();
                if self.eat_punct(';') {
                    return Ok(Some(Item::Other { line }));
                }
                self.expect_punct('{')?;
                let mut items = Vec::new();
                while let Some(item) = self.parse_item()? {
                    items.push(item);
                }
                self.expect_punct('}')?;
                Ok(Some(Item::Mod { name, items, line }))
            }
            "use" | "extern" | "type" | "const" | "static" => {
                self.skip_to_semi()?;
                Ok(Some(Item::Other { line }))
            }
            "macro_rules" => {
                self.i += 1;
                self.expect_punct('!')?;
                self.expect_ident()?;
                self.skip_balanced('{', '}')?;
                Ok(Some(Item::Other { line }))
            }
            _ if t.kind == TokenKind::Ident && self.glued_at(1, "!") => {
                // Item-position macro invocation.
                self.i += 2;
                if self.at_punct('{') {
                    self.skip_balanced('{', '}')?;
                } else if self.at_punct('(') {
                    self.skip_balanced('(', ')')?;
                    self.expect_punct(';')?;
                } else if self.at_punct('[') {
                    self.skip_balanced('[', ']')?;
                    self.expect_punct(';')?;
                } else {
                    return Err(self.err("expected macro delimiter"));
                }
                Ok(Some(Item::Other { line }))
            }
            other => Err(self.err_at(line, format!("expected item, found {other:?}"))),
        }
    }

    fn parse_visibility(&mut self) -> PResult<bool> {
        if !self.eat_ident("pub") {
            return Ok(false);
        }
        if self.at_punct('(') {
            self.skip_balanced('(', ')')?;
        }
        Ok(true)
    }

    /// Consumes to the `;` ending a `use`/`const`/`static`/`type`
    /// item, balancing every delimiter on the way.
    fn skip_to_semi(&mut self) -> PResult<()> {
        let start_line = self.line();
        loop {
            let Some(t) = self.cur() else {
                return Err(self.err_at(start_line, "unterminated item (missing `;`)".into()));
            };
            if t.is_punct(';') {
                self.i += 1;
                return Ok(());
            }
            if t.is_punct('{') {
                self.skip_balanced('{', '}')?;
            } else if t.is_punct('(') {
                self.skip_balanced('(', ')')?;
            } else if t.is_punct('[') {
                self.skip_balanced('[', ']')?;
            } else {
                self.i += 1;
            }
        }
    }

    fn parse_fn(&mut self, is_pub: bool) -> PResult<Fn> {
        let line = self.line();
        self.i += 1; // `fn`
        let name = self.expect_ident()?.text.clone();
        self.skip_generics()?;
        self.expect_punct('(')?;
        let mut has_self = false;
        let mut params = Vec::new();
        while !self.at_punct(')') {
            self.skip_attrs()?;
            // Receiver forms: self | mut self | &self | &mut self | &'a self.
            let save = self.i;
            let mut is_receiver = false;
            if self.eat_punct('&') {
                if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.i += 1;
                }
                self.eat_ident("mut");
                is_receiver = self.eat_ident("self");
            } else {
                self.eat_ident("mut");
                is_receiver = is_receiver || self.eat_ident("self");
            }
            if is_receiver {
                has_self = true;
            } else {
                self.i = save;
                let pat = self.parse_pat()?;
                self.expect_punct(':')?;
                let ty = self.type_text(&[',', ')'], &[])?;
                params.push(Param { pat, ty });
            }
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        let ret = if self.eat_glued("->") {
            let ty = self.type_text(&[';'], &["where"])?;
            Some(ty)
        } else {
            None
        };
        if self.at_ident("where") {
            self.type_text(&[';'], &[])?;
        }
        let body = if self.eat_punct(';') {
            None
        } else {
            Some(self.parse_block(0)?)
        };
        Ok(Fn {
            name,
            is_pub,
            has_self,
            params,
            ret,
            body,
            line,
        })
    }

    fn parse_struct(&mut self) -> PResult<Item> {
        let line = self.line();
        self.i += 1; // `struct`
        let name = self.expect_ident()?.text.clone();
        self.skip_generics()?;
        if self.at_ident("where") {
            self.type_text(&[';'], &[])?;
        }
        let mut fields = Vec::new();
        if self.eat_punct(';') {
            // unit struct
        } else if self.at_punct('(') {
            self.skip_balanced('(', ')')?;
            if self.at_ident("where") {
                self.type_text(&[';'], &[])?;
            }
            self.expect_punct(';')?;
        } else {
            self.expect_punct('{')?;
            while !self.at_punct('}') {
                self.skip_attrs()?;
                if self.at_punct('}') {
                    break;
                }
                self.parse_visibility()?;
                let ft = self.expect_ident()?;
                let (fname, fline) = (ft.text.clone(), ft.line);
                self.expect_punct(':')?;
                let ty = self.type_text(&[','], &[])?;
                fields.push(Field {
                    name: fname,
                    ty,
                    line: fline,
                });
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct('}')?;
        }
        Ok(Item::Struct(Struct { name, fields, line }))
    }

    fn parse_impl(&mut self, line: u32) -> PResult<Item> {
        self.i += 1; // `impl`
        self.skip_generics()?;
        let first = self.type_text(&[], &["for", "where"])?;
        let (trait_, self_ty) = if self.eat_ident("for") {
            let ty = self.type_text(&[], &["where"])?;
            (Some(first), ty)
        } else {
            (None, first)
        };
        if self.at_ident("where") {
            self.type_text(&[], &[])?;
        }
        self.expect_punct('{')?;
        let mut items = Vec::new();
        while let Some(item) = self.parse_item()? {
            items.push(item);
        }
        self.expect_punct('}')?;
        Ok(Item::Impl {
            self_ty,
            trait_,
            items,
            line,
        })
    }

    fn parse_trait(&mut self, line: u32) -> PResult<Item> {
        self.i += 1; // `trait`
        let name = self.expect_ident()?.text.clone();
        self.skip_generics()?;
        // Supertrait bounds / where clause: consume to the body.
        self.type_text(&[], &[])?;
        self.expect_punct('{')?;
        let mut items = Vec::new();
        while let Some(item) = self.parse_item()? {
            items.push(item);
        }
        self.expect_punct('}')?;
        Ok(Item::Trait { name, items, line })
    }

    // ----- statements -----------------------------------------------------

    fn parse_block(&mut self, depth: u32) -> PResult<Block> {
        if depth > 200 {
            return Err(self.err(MAX_DEPTH_ERR));
        }
        let line = self.line();
        self.expect_punct('{')?;
        let mut stmts = Vec::new();
        loop {
            self.skip_attrs()?;
            if self.at_punct('}') || self.cur().is_none() {
                break;
            }
            if self.eat_punct(';') {
                continue;
            }
            if self.at_ident("let") {
                stmts.push(self.parse_let(depth)?);
                continue;
            }
            if self.stmt_is_item() {
                match self.parse_item()? {
                    Some(item) => stmts.push(Stmt::Item(Box::new(item))),
                    None => break,
                }
                continue;
            }
            let expr = self.expr_stmt(depth)?;
            let semi = self.eat_punct(';');
            stmts.push(Stmt::Expr { expr, semi });
        }
        self.expect_punct('}')?;
        Ok(Block { stmts, line })
    }

    /// Whether the statement starting at the cursor is an item.
    fn stmt_is_item(&self) -> bool {
        let Some(t) = self.cur() else {
            return false;
        };
        if t.kind != TokenKind::Ident {
            return false;
        }
        matches!(
            t.text.as_str(),
            "fn" | "struct"
                | "enum"
                | "impl"
                | "trait"
                | "mod"
                | "use"
                | "type"
                | "macro_rules"
                | "pub"
                | "static"
        ) || (t.text == "const"
            // `const` item in statement position; `const` blocks/closures
            // do not occur in this workspace.
            && self.peek(1).is_some_and(|n| n.kind == TokenKind::Ident))
    }

    fn parse_let(&mut self, depth: u32) -> PResult<Stmt> {
        let line = self.line();
        self.i += 1; // `let`
        let pat = self.parse_pat()?;
        if self.eat_punct(':') {
            self.type_text(&[';', '='], &[])?;
        }
        let mut init = None;
        if self.at_punct('=') && !self.glued("==") {
            self.i += 1;
            init = Some(self.expr_depth(false, depth)?);
        }
        let mut else_block = None;
        if self.eat_ident("else") {
            else_block = Some(self.parse_block(depth + 1)?);
        }
        self.expect_punct(';')?;
        Ok(Stmt::Let {
            pat,
            init,
            else_block,
            line,
        })
    }

    /// Statement-position expression: a leading block-like expression
    /// (`if`, `match`, `loop`, `{`...) ends the statement unless a
    /// postfix `.`/`?` continues it.
    fn expr_stmt(&mut self, depth: u32) -> PResult<Expr> {
        if self.starts_block_like() {
            let e = self.parse_block_like(depth)?;
            if self.at_punct('.') || self.at_punct('?') {
                let e = self.postfix(e, depth, false)?;
                return self.binary_continue(e, 0, false, depth);
            }
            return Ok(e);
        }
        self.expr_depth(false, depth)
    }

    fn starts_block_like(&self) -> bool {
        if self.at_punct('{') {
            return true;
        }
        let Some(t) = self.cur() else {
            return false;
        };
        (t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "if" | "match" | "loop" | "while" | "for"))
            || t.kind == TokenKind::Lifetime
    }

    // ----- expressions ----------------------------------------------------

    fn expr(&mut self, no_struct: bool) -> PResult<Expr> {
        self.expr_depth(no_struct, 0)
    }

    /// Full expression including assignment.
    fn expr_depth(&mut self, no_struct: bool, depth: u32) -> PResult<Expr> {
        if depth > 200 {
            return Err(self.err(MAX_DEPTH_ERR));
        }
        let lhs = self.expr_bp(0, no_struct, depth)?;
        if let Some(op) = self.peek_assign_op() {
            let line = self.line();
            self.i += op.len() + 1; // operator chars + `=`
            let rhs = self.expr_depth(no_struct, depth + 1)?;
            return Ok(Expr::Assign {
                lhs: Box::new(lhs),
                op: if op.is_empty() {
                    None
                } else {
                    Some(op.to_string())
                },
                rhs: Box::new(rhs),
                line,
            });
        }
        Ok(lhs)
    }

    /// If an assignment operator starts at the cursor, returns its
    /// compound part (`""` for plain `=`, `"+"` for `+=`, `"<<"` for
    /// `<<=`).
    fn peek_assign_op(&self) -> Option<&'static str> {
        for (glue, compound) in [
            ("<<=", "<<"),
            (">>=", ">>"),
            ("+=", "+"),
            ("-=", "-"),
            ("*=", "*"),
            ("/=", "/"),
            ("%=", "%"),
            ("^=", "^"),
            ("&=", "&"),
            ("|=", "|"),
        ] {
            if self.glued(glue) {
                return Some(compound);
            }
        }
        if self.at_punct('=') && !self.glued("==") && !self.glued("=>") {
            return Some("");
        }
        None
    }

    /// Binary operators and their (display text, left binding power).
    /// Right bp is left + 1 (left-associative).
    fn peek_binary_op(&self) -> Option<(&'static str, u8)> {
        // Longest-match first; assignment forms were checked earlier.
        const OPS: &[(&str, u8)] = &[
            ("..=", 4),
            ("..", 4),
            ("||", 6),
            ("&&", 8),
            ("==", 10),
            ("!=", 10),
            ("<=", 10),
            (">=", 10),
            ("<<", 18),
            (">>", 18),
            ("<", 10),
            (">", 10),
            ("|", 12),
            ("^", 14),
            ("&", 16),
            ("+", 20),
            ("-", 20),
            ("*", 22),
            ("/", 22),
            ("%", 22),
        ];
        for &(op, bp) in OPS {
            if op.len() > 1 {
                if self.glued(op) {
                    // `<<=` / `>>=` are assignments, not shifts.
                    if (op == "<<" || op == ">>") && self.glued(&format!("{op}=")) {
                        continue;
                    }
                    return Some((op, bp));
                }
            } else if self.at_punct(op.as_bytes()[0] as char) {
                let c = op.as_bytes()[0] as char;
                // Reject when the single char starts a longer glued
                // operator that means something else: `<=`/`>=` are
                // handled above, and `+=`, `&=`, … are assignments.
                if self.glued_at(0, &format!("{c}=")) {
                    continue;
                }
                return Some((op, bp));
            }
        }
        None
    }

    fn expr_bp(&mut self, min_bp: u8, no_struct: bool, depth: u32) -> PResult<Expr> {
        if depth > 200 {
            return Err(self.err(MAX_DEPTH_ERR));
        }
        // Block-like prefixes (`if`/`match`/`{…}`) never take a `(…)`
        // call or `[…]` index continuation in Rust's statement-adjacent
        // grammar; only `.`/`?` chain off them.
        let blocklike = self.starts_block_like();
        let lhs = self.prefix(no_struct, depth)?;
        let lhs = self.postfix(lhs, depth, !blocklike)?;
        self.binary_continue(lhs, min_bp, no_struct, depth)
    }

    fn binary_continue(
        &mut self,
        mut lhs: Expr,
        min_bp: u8,
        no_struct: bool,
        depth: u32,
    ) -> PResult<Expr> {
        loop {
            // `as` casts bind tighter than any binary operator.
            if self.at_ident("as") {
                let line = self.line();
                self.i += 1;
                self.cast_type()?;
                lhs = Expr::Cast {
                    expr: Box::new(lhs),
                    line,
                };
                continue;
            }
            let Some((op, bp)) = self.peek_binary_op() else {
                break;
            };
            if bp < min_bp {
                break;
            }
            let line = self.line();
            self.i += op.chars().count();
            if op == ".." || op == "..=" {
                let hi = if self.range_has_rhs(no_struct) {
                    Some(Box::new(self.expr_bp(bp + 1, no_struct, depth + 1)?))
                } else {
                    None
                };
                lhs = Expr::Range {
                    lo: Some(Box::new(lhs)),
                    hi,
                    line,
                };
                continue;
            }
            let rhs = self.expr_bp(bp + 1, no_struct, depth + 1)?;
            lhs = Expr::Binary {
                op: op.to_string(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    /// Whether a `..` range at the cursor has a right-hand bound.
    fn range_has_rhs(&self, _no_struct: bool) -> bool {
        let Some(t) = self.cur() else {
            return false;
        };
        if t.kind == TokenKind::Punct {
            // `{` never begins a range bound in this grammar.
            return matches!(t.text.as_str(), "(" | "[" | "&" | "*" | "-" | "!");
        }
        if t.kind == TokenKind::Ident {
            return !matches!(t.text.as_str(), "else" | "in");
        }
        true // literal
    }

    /// Consumes a cast target type: `&`-prefixes then a path with
    /// optional generic arguments.
    fn cast_type(&mut self) -> PResult<()> {
        while self.eat_punct('&') || self.eat_punct('*') {
            self.eat_ident("mut");
            self.eat_ident("const");
        }
        self.expect_ident()?;
        loop {
            if self.glued("::") {
                self.i += 2;
                self.expect_ident()?;
            } else if self.at_punct('<') {
                self.skip_generics()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn prefix(&mut self, no_struct: bool, depth: u32) -> PResult<Expr> {
        if depth > 200 {
            return Err(self.err(MAX_DEPTH_ERR));
        }
        let Some(t) = self.cur() else {
            return Err(self.err("expected expression, found end of input"));
        };
        let line = t.line;
        // Reference / unary operators.
        if self.glued("&&") {
            self.i += 2;
            self.eat_ident("mut");
            let inner = self.expr_bp(26, no_struct, depth + 1)?;
            return Ok(Expr::Ref {
                is_mut: false,
                expr: Box::new(Expr::Ref {
                    is_mut: false,
                    expr: Box::new(inner),
                    line,
                }),
                line,
            });
        }
        if self.eat_punct('&') {
            let is_mut = self.eat_ident("mut");
            let inner = self.expr_bp(26, no_struct, depth + 1)?;
            return Ok(Expr::Ref {
                is_mut,
                expr: Box::new(inner),
                line,
            });
        }
        for op in ['*', '-', '!'] {
            if self.at_punct(op) && !self.glued("!=") {
                self.i += 1;
                let inner = self.expr_bp(26, no_struct, depth + 1)?;
                return Ok(Expr::Unary {
                    op,
                    operand: Box::new(inner),
                    line,
                });
            }
        }
        // Leading range: `..hi`, `..=hi`, bare `..`.
        if self.glued("..=") || self.glued("..") {
            let inclusive = self.glued("..=");
            self.i += if inclusive { 3 } else { 2 };
            let hi = if self.range_has_rhs(no_struct) {
                Some(Box::new(self.expr_bp(5, no_struct, depth + 1)?))
            } else {
                None
            };
            return Ok(Expr::Range { lo: None, hi, line });
        }
        // Closures.
        if self.at_ident("move") || self.at_punct('|') || self.glued("||") {
            return self.parse_closure(no_struct, depth);
        }
        if self.starts_block_like() {
            return self.parse_block_like(depth);
        }
        match t.kind {
            TokenKind::Number | TokenKind::Str | TokenKind::Char => {
                self.i += 1;
                Ok(Expr::Lit {
                    text: t.text.clone(),
                    line,
                })
            }
            TokenKind::Punct => match t.text.as_str() {
                "(" => {
                    self.i += 1;
                    let mut elems = Vec::new();
                    let mut trailing_comma = false;
                    while !self.at_punct(')') {
                        elems.push(self.expr_depth(false, depth + 1)?);
                        trailing_comma = self.eat_punct(',');
                        if !trailing_comma {
                            break;
                        }
                    }
                    self.expect_punct(')')?;
                    if elems.len() == 1 && !trailing_comma {
                        Ok(elems.swap_remove(0))
                    } else {
                        Ok(Expr::Tuple { elems, line })
                    }
                }
                "[" => {
                    self.i += 1;
                    let mut elems = Vec::new();
                    while !self.at_punct(']') {
                        elems.push(self.expr_depth(false, depth + 1)?);
                        if self.eat_punct(';') {
                            // `[elem; len]`
                            elems.push(self.expr_depth(false, depth + 1)?);
                            break;
                        }
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct(']')?;
                    Ok(Expr::Array { elems, line })
                }
                "<" => {
                    // Qualified path `<T as Trait>::assoc(...)`.
                    self.skip_generics()?;
                    self.expect_glued("::")?;
                    let mut segs = vec![self.expect_ident()?.text.clone()];
                    self.path_continue(&mut segs)?;
                    Ok(Expr::Path { segs, line })
                }
                other => Err(self.err_at(line, format!("expected expression, found {other:?}"))),
            },
            TokenKind::Ident => {
                if t.text == "return" {
                    self.i += 1;
                    let value = if self.expr_follows() {
                        Some(Box::new(self.expr_depth(no_struct, depth + 1)?))
                    } else {
                        None
                    };
                    return Ok(Expr::Return { value, line });
                }
                if t.text == "break" {
                    self.i += 1;
                    if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                        self.i += 1;
                    }
                    let value = if self.expr_follows() {
                        Some(Box::new(self.expr_depth(no_struct, depth + 1)?))
                    } else {
                        None
                    };
                    return Ok(Expr::Break { value, line });
                }
                if t.text == "continue" {
                    self.i += 1;
                    if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                        self.i += 1;
                    }
                    return Ok(Expr::Continue { line });
                }
                if t.text == "true" || t.text == "false" {
                    self.i += 1;
                    return Ok(Expr::Lit {
                        text: t.text.clone(),
                        line,
                    });
                }
                // Path, then macro call / struct literal.
                let mut segs = vec![t.text.clone()];
                self.i += 1;
                self.path_continue(&mut segs)?;
                if self.at_punct('!') && !self.glued("!=") {
                    return self.parse_macro_call(segs, line, depth);
                }
                if self.at_punct('{') && !no_struct {
                    return self.parse_struct_lit(segs, line, depth);
                }
                Ok(Expr::Path { segs, line })
            }
            TokenKind::Lifetime => {
                // Handled by starts_block_like above (labelled loops);
                // anything else is unexpected.
                Err(self.err_at(line, format!("unexpected lifetime {:?}", t.text)))
            }
        }
    }

    /// After the first segment: `:: seg`, `:: <turbofish>` repeats.
    fn path_continue(&mut self, segs: &mut Vec<String>) -> PResult<()> {
        while self.glued("::") {
            self.i += 2;
            if self.at_punct('<') {
                self.skip_generics()?;
                continue;
            }
            let seg = self.expect_ident()?;
            segs.push(seg.text.clone());
        }
        Ok(())
    }

    /// Whether a `return`/`break` has a value expression after it.
    fn expr_follows(&self) -> bool {
        let Some(t) = self.cur() else {
            return false;
        };
        match t.kind {
            TokenKind::Punct => !matches!(t.text.as_str(), ";" | "}" | ")" | "]" | ","),
            TokenKind::Ident => !matches!(t.text.as_str(), "else"),
            _ => true,
        }
    }

    fn parse_closure(&mut self, no_struct: bool, depth: u32) -> PResult<Expr> {
        let line = self.line();
        self.eat_ident("move");
        let mut params = Vec::new();
        if self.eat_glued("||") {
            // no params
        } else {
            self.expect_punct('|')?;
            while !self.at_punct('|') {
                params.push(self.parse_pat()?);
                if self.eat_punct(':') {
                    self.type_text(&[',', '|'], &[])?;
                }
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct('|')?;
        }
        let body = if self.eat_glued("->") {
            self.type_text(&[], &[])?;
            Expr::Block(self.parse_block(depth + 1)?)
        } else {
            self.expr_depth(no_struct, depth + 1)?
        };
        Ok(Expr::Closure {
            params,
            body: Box::new(body),
            line,
        })
    }

    fn parse_block_like(&mut self, depth: u32) -> PResult<Expr> {
        if depth > 200 {
            return Err(self.err(MAX_DEPTH_ERR));
        }
        // Labelled loops: `'outer: loop { ... }`.
        if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
            self.i += 1;
            self.expect_punct(':')?;
        }
        let Some(t) = self.cur() else {
            return Err(self.err("expected expression, found end of input"));
        };
        let line = t.line;
        if t.is_punct('{') {
            return Ok(Expr::Block(self.parse_block(depth + 1)?));
        }
        match t.text.as_str() {
            "if" => self.parse_if(depth),
            "match" => {
                self.i += 1;
                let scrutinee = self.expr_bp(0, true, depth + 1)?;
                self.expect_punct('{')?;
                let mut arms = Vec::new();
                loop {
                    self.skip_attrs()?;
                    if self.at_punct('}') || self.cur().is_none() {
                        break;
                    }
                    let arm_line = self.line();
                    let pat = self.parse_pat_or()?;
                    let guard = if self.eat_ident("if") {
                        Some(self.expr_depth(true, depth + 1)?)
                    } else {
                        None
                    };
                    self.expect_glued("=>")?;
                    // A block-like arm body ends the arm (Rust requires
                    // parens to continue it with operators), so the next
                    // arm's leading `(`/`&`/`-`/`|` is not misread as a
                    // continuation.
                    let body = if self.starts_block_like() {
                        self.parse_block_like(depth + 1)?
                    } else {
                        self.expr_depth(false, depth + 1)?
                    };
                    self.eat_punct(',');
                    arms.push(Arm {
                        pat,
                        guard,
                        body,
                        line: arm_line,
                    });
                }
                self.expect_punct('}')?;
                Ok(Expr::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                    line,
                })
            }
            "while" => {
                self.i += 1;
                let (pat, cond) = if self.eat_ident("let") {
                    let p = self.parse_pat_or()?;
                    self.expect_punct('=')?;
                    (Some(p), self.expr_bp(0, true, depth + 1)?)
                } else {
                    (None, self.expr_bp(0, true, depth + 1)?)
                };
                let body = self.parse_block(depth + 1)?;
                Ok(Expr::While {
                    pat,
                    cond: Box::new(cond),
                    body,
                    line,
                })
            }
            "loop" => {
                self.i += 1;
                let body = self.parse_block(depth + 1)?;
                Ok(Expr::Loop { body, line })
            }
            "for" => {
                self.i += 1;
                let pat = self.parse_pat()?;
                if !self.eat_ident("in") {
                    return Err(self.err("expected `in` in `for` loop"));
                }
                let iter = self.expr_bp(0, true, depth + 1)?;
                let body = self.parse_block(depth + 1)?;
                Ok(Expr::For {
                    pat,
                    iter: Box::new(iter),
                    body,
                    line,
                })
            }
            other => Err(self.err_at(line, format!("expected block-like, found {other:?}"))),
        }
    }

    fn parse_if(&mut self, depth: u32) -> PResult<Expr> {
        let line = self.line();
        self.i += 1; // `if`
        let (pat, cond) = if self.eat_ident("let") {
            let p = self.parse_pat_or()?;
            self.expect_punct('=')?;
            (Some(p), self.expr_bp(0, true, depth + 1)?)
        } else {
            (None, self.expr_bp(0, true, depth + 1)?)
        };
        let then = self.parse_block(depth + 1)?;
        let else_ = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if(depth + 1)?))
            } else {
                Some(Box::new(Expr::Block(self.parse_block(depth + 1)?)))
            }
        } else {
            None
        };
        Ok(Expr::If {
            pat,
            cond: Box::new(cond),
            then,
            else_,
            line,
        })
    }

    fn parse_struct_lit(&mut self, path: Vec<String>, line: u32, depth: u32) -> PResult<Expr> {
        self.expect_punct('{')?;
        let mut fields = Vec::new();
        let mut base = None;
        while !self.at_punct('}') {
            self.skip_attrs()?;
            if self.glued("..") {
                self.i += 2;
                base = Some(Box::new(self.expr_depth(false, depth + 1)?));
                break;
            }
            let name = self.expect_ident()?.text.clone();
            let value = if self.eat_punct(':') {
                self.expr_depth(false, depth + 1)?
            } else {
                Expr::Path {
                    segs: vec![name.clone()],
                    line: self.line(),
                }
            };
            fields.push((name, value));
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct('}')?;
        Ok(Expr::StructLit {
            path,
            fields,
            base,
            line,
        })
    }

    fn parse_macro_call(&mut self, segs: Vec<String>, line: u32, depth: u32) -> PResult<Expr> {
        self.expect_punct('!')?;
        let name = segs.last().cloned().unwrap_or_default();
        let (open, close) = match self.cur() {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => return Err(self.err("expected macro delimiter")),
        };
        // Capture the argument token slice, then try to parse it as a
        // comma-separated expression list.
        let body_start = self.i + 1;
        self.skip_balanced(open, close)?;
        let body_end = self.i - 1;
        let slice = &self.toks[body_start..body_end];
        match parse_expr_list(slice) {
            Ok(args) => Ok(Expr::MacroCall {
                name,
                args,
                parsed: true,
                line,
            }),
            Err(_) => {
                // Fallback: recover call-shaped sub-expressions by a
                // token scan so panic/taint analysis still sees them.
                let mut args = Vec::new();
                for (k, t) in slice.iter().enumerate() {
                    if t.kind != TokenKind::Ident {
                        continue;
                    }
                    let next_paren = slice.get(k + 1).is_some_and(|n| n.is_punct('('));
                    if !next_paren {
                        continue;
                    }
                    let is_method = k > 0 && slice[k - 1].is_punct('.');
                    let callee = Expr::Path {
                        segs: vec![t.text.clone()],
                        line: t.line,
                    };
                    args.push(if is_method {
                        Expr::MethodCall {
                            recv: Box::new(Expr::Path {
                                segs: vec!["_".to_string()],
                                line: t.line,
                            }),
                            method: t.text.clone(),
                            args: Vec::new(),
                            line: t.line,
                        }
                    } else {
                        Expr::Call {
                            callee: Box::new(callee),
                            args: Vec::new(),
                            line: t.line,
                        }
                    });
                }
                let _ = depth;
                Ok(Expr::MacroCall {
                    name,
                    args,
                    parsed: false,
                    line,
                })
            }
        }
    }

    fn postfix(&mut self, mut e: Expr, depth: u32, allow_call: bool) -> PResult<Expr> {
        loop {
            if self.at_punct('?') {
                let line = self.line();
                self.i += 1;
                e = Expr::Try {
                    expr: Box::new(e),
                    line,
                };
                continue;
            }
            if self.at_punct('.') && !self.glued("..") {
                let line = self.line();
                self.i += 1;
                let Some(t) = self.cur() else {
                    return Err(self.err("expected field or method after `.`"));
                };
                if t.kind == TokenKind::Number {
                    // Tuple field(s): `.0`, and `.0.1` which the lexer
                    // runs together as the number `0.1`.
                    self.i += 1;
                    for part in t.text.split('.') {
                        e = Expr::FieldAccess {
                            base: Box::new(e),
                            name: part.to_string(),
                            line,
                        };
                    }
                    continue;
                }
                let name = self.expect_ident()?.text.clone();
                if self.glued("::") {
                    // Turbofish on a method: `.collect::<Vec<_>>()`.
                    self.i += 2;
                    self.skip_generics()?;
                }
                if self.at_punct('(') {
                    let args = self.call_args(depth)?;
                    e = Expr::MethodCall {
                        recv: Box::new(e),
                        method: name,
                        args,
                        line,
                    };
                } else {
                    e = Expr::FieldAccess {
                        base: Box::new(e),
                        name,
                        line,
                    };
                }
                continue;
            }
            if self.at_punct('(') && allow_call {
                let line = self.line();
                let args = self.call_args(depth)?;
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line,
                };
                continue;
            }
            if self.at_punct('[') && allow_call {
                let line = self.line();
                self.i += 1;
                let index = self.expr_depth(false, depth + 1)?;
                self.expect_punct(']')?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    line,
                };
                continue;
            }
            break;
        }
        Ok(e)
    }

    fn call_args(&mut self, depth: u32) -> PResult<Vec<Expr>> {
        self.expect_punct('(')?;
        let mut args = Vec::new();
        while !self.at_punct(')') {
            args.push(self.expr_depth(false, depth + 1)?);
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        Ok(args)
    }

    // ----- patterns -------------------------------------------------------

    /// An or-pattern: `A | B | C` (leading `|` tolerated).
    fn parse_pat_or(&mut self) -> PResult<Pat> {
        self.eat_punct('|');
        let first = self.parse_pat()?;
        if !self.at_punct('|') || self.glued("||") {
            return Ok(first);
        }
        let mut pats = vec![first];
        while self.at_punct('|') && !self.glued("||") {
            self.i += 1;
            pats.push(self.parse_pat()?);
        }
        Ok(Pat::Or(pats))
    }

    fn parse_pat(&mut self) -> PResult<Pat> {
        let Some(t) = self.cur() else {
            return Err(self.err("expected pattern, found end of input"));
        };
        // References.
        if self.glued("&&") {
            self.i += 2;
            self.eat_ident("mut");
            return Ok(Pat::Ref(Box::new(Pat::Ref(Box::new(self.parse_pat()?)))));
        }
        if self.eat_punct('&') {
            self.eat_ident("mut");
            return Ok(Pat::Ref(Box::new(self.parse_pat()?)));
        }
        // Rest / range-to patterns.
        if self.glued("..=") {
            self.i += 3;
            self.pat_range_bound()?;
            return Ok(Pat::Range);
        }
        if self.glued("..") {
            self.i += 2;
            return Ok(Pat::Rest);
        }
        // Literals (possibly negative), with range continuation.
        if t.is_punct('-') || matches!(t.kind, TokenKind::Number | TokenKind::Str | TokenKind::Char)
        {
            let mut text = String::new();
            if self.eat_punct('-') {
                text.push('-');
            }
            let Some(lit) = self.cur() else {
                return Err(self.err("expected literal pattern"));
            };
            text.push_str(&lit.text);
            self.i += 1;
            if self.glued("..=") || self.glued("..") {
                self.i += if self.glued("..=") { 3 } else { 2 };
                if self.pat_bound_follows() {
                    self.pat_range_bound()?;
                }
                return Ok(Pat::Range);
            }
            return Ok(Pat::Lit(text));
        }
        if t.is_punct('(') {
            self.i += 1;
            let mut elems = Vec::new();
            while !self.at_punct(')') {
                elems.push(self.parse_pat_or()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(')')?;
            if elems.len() == 1 {
                return Ok(elems.swap_remove(0));
            }
            return Ok(Pat::Tuple(elems));
        }
        if t.is_punct('[') {
            self.i += 1;
            let mut elems = Vec::new();
            while !self.at_punct(']') {
                elems.push(self.parse_pat_at()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(']')?;
            return Ok(Pat::Slice(elems));
        }
        if t.kind != TokenKind::Ident {
            return Err(self.err_at(t.line, format!("expected pattern, found {:?}", t.text)));
        }
        match t.text.as_str() {
            "_" => {
                self.i += 1;
                Ok(Pat::Wild)
            }
            "mut" => {
                self.i += 1;
                let name = self.expect_ident()?.text.clone();
                Ok(Pat::Ident { name, sub: None })
            }
            "ref" => {
                self.i += 1;
                self.eat_ident("mut");
                let name = self.expect_ident()?.text.clone();
                Ok(Pat::Ident { name, sub: None })
            }
            "true" | "false" => {
                self.i += 1;
                Ok(Pat::Lit(t.text.clone()))
            }
            "box" => {
                self.i += 1;
                self.parse_pat()
            }
            _ => self.parse_pat_path(),
        }
    }

    /// A slice-pattern element, which may be `name @ ..`.
    fn parse_pat_at(&mut self) -> PResult<Pat> {
        let p = self.parse_pat_or()?;
        Ok(p)
    }

    fn parse_pat_path(&mut self) -> PResult<Pat> {
        let first = self.expect_ident()?;
        let mut segs = vec![first.text.clone()];
        while self.glued("::") {
            self.i += 2;
            if self.at_punct('<') {
                self.skip_generics()?;
                continue;
            }
            segs.push(self.expect_ident()?.text.clone());
        }
        // `name @ subpat`
        if segs.len() == 1 && self.at_punct('@') {
            self.i += 1;
            let sub = self.parse_pat()?;
            return Ok(Pat::Ident {
                name: segs.swap_remove(0),
                sub: Some(Box::new(sub)),
            });
        }
        if self.at_punct('(') {
            self.i += 1;
            let mut elems = Vec::new();
            while !self.at_punct(')') {
                elems.push(self.parse_pat_or()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct(')')?;
            return Ok(Pat::TupleStruct { path: segs, elems });
        }
        if self.at_punct('{') {
            self.i += 1;
            let mut fields = Vec::new();
            while !self.at_punct('}') {
                self.skip_attrs()?;
                if self.glued("..") {
                    self.i += 2;
                    break;
                }
                self.eat_ident("ref");
                self.eat_ident("mut");
                let name = self.expect_ident()?.text.clone();
                let pat = if self.eat_punct(':') {
                    self.parse_pat_or()?
                } else {
                    Pat::Ident {
                        name: name.clone(),
                        sub: None,
                    }
                };
                fields.push((name, pat));
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.expect_punct('}')?;
            return Ok(Pat::Struct { path: segs, fields });
        }
        if self.glued("..=") || self.glued("..") {
            self.i += if self.glued("..=") { 3 } else { 2 };
            if self.pat_bound_follows() {
                self.pat_range_bound()?;
            }
            return Ok(Pat::Range);
        }
        if segs.len() == 1 {
            let name = &segs[0];
            let binds = name
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_');
            if binds {
                return Ok(Pat::Ident {
                    name: segs.swap_remove(0),
                    sub: None,
                });
            }
        }
        Ok(Pat::Path(segs))
    }

    fn pat_bound_follows(&self) -> bool {
        self.cur().is_some_and(|t| {
            matches!(t.kind, TokenKind::Number | TokenKind::Char)
                || (t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "if" | "=>"))
                || t.is_punct('-')
        })
    }

    /// Consumes one range-bound pattern atom (literal or path).
    fn pat_range_bound(&mut self) -> PResult<()> {
        self.eat_punct('-');
        let Some(t) = self.cur() else {
            return Err(self.err("expected range bound"));
        };
        match t.kind {
            TokenKind::Number | TokenKind::Char | TokenKind::Str => {
                self.i += 1;
                Ok(())
            }
            TokenKind::Ident => {
                self.i += 1;
                while self.glued("::") {
                    self.i += 2;
                    self.expect_ident()?;
                }
                Ok(())
            }
            _ => Err(self.err_at(t.line, format!("expected range bound, found {:?}", t.text))),
        }
    }
}
