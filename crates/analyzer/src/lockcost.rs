//! Lint **lock-cost**: interprocedural critical-section cost audit of
//! every ranked lockdep guard, plus the machine-readable contention
//! report behind `target/analysis/lock-cost.json`.
//!
//! ROADMAP item 4 (per-partition lock sharding) needs a work-list:
//! which guards are expensive, and what exactly runs while they are
//! held? This pass computes, for every acquire site of a ranked lock
//! ([`rules::LOCK_FIELDS`] × `sim::lockdep::RANKS`), the
//! interprocedural set of operations executed while the guard may be
//! live:
//!
//! * **I/O** — injectable fault ticks ([`Op::Tick`]) and raw
//!   filesystem calls ([`Op::Io`]): schedule points that park every
//!   contender under liquid-check and stall them under chaos.
//! * **Allocations** ([`Op::Alloc`]) — `to_vec`/`collect`/
//!   `with_capacity`/`vec!`/`format!` &co.: heap churn that widens the
//!   section.
//! * **Loops** ([`Op::Loop`]) — statically unbounded iteration over
//!   partitions/records under the guard.
//! * **Nested ranked acquisitions** — taking another ranked lock while
//!   this one is held (legal when descending, but every nesting is
//!   contention the sharding refactor must untangle).
//!
//! The analysis is a fixpoint over **per-function summaries**: each
//! function's own op counts plus the (capped) sums of its callees'
//! summaries, iterated over the workspace call graph until stable —
//! never inlining, so recursion and diamond call shapes cost nothing.
//! Guard attribution then replays the [`HeldLocks`] may-analysis over
//! each function that acquires a ranked lock and charges every op —
//! and every resolved callee's summary at [`Op::Call`] — to the guards
//! live at that point.
//!
//! Counts are *static* (a call site counts once, however often the
//! loop around it spins), so the score is a ranking signal, not a
//! cycle count; E12 provides the dynamic twin.
//!
//! Lint findings fire only for guards in the **hot** closure (the
//! [`HOT_ROOTS`] reachability shared with the hot-copy pass) that hold
//! across I/O or a nested ranked acquisition — the two shapes that
//! serialize the ≥5M msg/s path. Allocation/loop pressure is
//! report-only. The full per-guard table, hot or not, lands in the
//! JSON report sorted by static cost.
//!
//! [`HeldLocks`]: crate::rules::HeldLocks
//! [`Op::Tick`]: crate::cfg::Op::Tick
//! [`Op::Io`]: crate::cfg::Op::Io
//! [`Op::Alloc`]: crate::cfg::Op::Alloc
//! [`Op::Loop`]: crate::cfg::Op::Loop
//! [`Op::Call`]: crate::cfg::Op::Call
//! [`rules::LOCK_FIELDS`]: crate::rules::LOCK_FIELDS

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::callgraph::{CallGraph, CallSite};
use crate::cfg::{self, Cfg, Op};
use crate::dataflow;
use crate::hotpath::HOT_ROOTS;
use crate::rules;
use crate::{Context, Finding, SourceData};

/// Cap on every additive counter: keeps the summary lattice finite so
/// the fixpoint terminates through recursion cycles, while staying far
/// above any real count.
const CAP: u32 = 1_000;

/// What one function (or one guard's critical section) statically
/// executes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostSummary {
    /// Injectable fault ticks + raw filesystem calls.
    pub io: u32,
    /// Heap allocations.
    pub alloc: u32,
    /// Loop entries.
    pub loops: u32,
    /// Ranked locks acquired (rank names).
    pub nested: BTreeSet<&'static str>,
}

impl CostSummary {
    /// Adds `other` into `self` (capped counts, unioned rank set).
    fn absorb(&mut self, other: &CostSummary) {
        self.io = (self.io + other.io).min(CAP);
        self.alloc = (self.alloc + other.alloc).min(CAP);
        self.loops = (self.loops + other.loops).min(CAP);
        self.nested.extend(other.nested.iter().copied());
    }
}

/// One ranked-guard acquire site with its attributed cost.
#[derive(Debug, Clone)]
pub struct GuardCost {
    /// Rank name (`cluster.state`, …).
    pub rank: &'static str,
    /// Rank order from `sim::lockdep::RANKS`.
    pub order: u32,
    /// Workspace-relative file of the acquire site.
    pub file: String,
    /// 1-based line of the acquire site.
    pub line: u32,
    /// Qualified name of the function holding the guard.
    pub function: String,
    /// Acquisition method (`lock`, `read`, `write`).
    pub method: String,
    /// Whether the holding function is in the hot-path closure.
    pub hot: bool,
    /// What runs while the guard may be live.
    pub cost: CostSummary,
}

impl GuardCost {
    /// Static contention score: I/O is the dominant serializer, nested
    /// locks second, loops third, allocations last.
    pub fn score(&self) -> u32 {
        self.cost.io * 8
            + (self.cost.nested.len() as u32) * 4
            + self.cost.loops * 2
            + self.cost.alloc
    }
}

/// The contention report: every ranked-guard acquire site in the
/// workspace, sorted by descending static cost.
#[derive(Debug, Default)]
pub struct LockCostReport {
    /// Per-site guard costs (sorted by [`GuardCost::score`], then rank
    /// name, file, line — fully deterministic).
    pub guards: Vec<GuardCost>,
}

impl LockCostReport {
    /// The set of rank names with at least one acquire site — the
    /// third copy of the rank table the drift test holds against
    /// `sim::lockdep::RANKS` and [`rules::LOCK_FIELDS`].
    pub fn inventory(&self) -> BTreeSet<&'static str> {
        self.guards.iter().map(|g| g.rank).collect()
    }

    /// Every acquire site as `(rank, file, line)` — the drift test
    /// holds this against the shardability report's sites, since both
    /// passes replay the same guard walk.
    pub fn sites(&self) -> BTreeSet<(&'static str, &str, u32)> {
        self.guards
            .iter()
            .map(|g| (g.rank, g.file.as_str(), g.line))
            .collect()
    }

    /// Renders the `lock-cost/v1` JSON document (hand-rolled — the
    /// build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"lock-cost/v1\",\"guards\":[");
        for (i, g) in self.guards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rank\":\"{}\",\"order\":{},\"file\":\"{}\",\"line\":{},\
                 \"function\":\"{}\",\"method\":\"{}\",\"hot\":{},\
                 \"io\":{},\"alloc\":{},\"loops\":{},\"nested\":[{}],\"score\":{}}}",
                esc(g.rank),
                g.order,
                esc(&g.file),
                g.line,
                esc(&g.function),
                esc(&g.method),
                g.hot,
                g.cost.io,
                g.cost.alloc,
                g.cost.loops,
                g.cost
                    .nested
                    .iter()
                    .map(|r| format!("\"{}\"", esc(r)))
                    .collect::<Vec<_>>()
                    .join(","),
                g.score()
            ));
        }
        out.push_str("],\"ranks\":[");
        // Per-rank aggregation: the sharding work-list proper.
        let mut totals: BTreeMap<&'static str, (u32, u32, CostSummary)> = BTreeMap::new();
        for g in &self.guards {
            let entry = totals
                .entry(g.rank)
                .or_insert_with(|| (g.order, 0, CostSummary::default()));
            entry.1 += 1;
            entry.2.absorb(&g.cost);
        }
        let mut ranks: Vec<_> = totals.into_iter().collect();
        ranks.sort_by(|a, b| {
            let score =
                |c: &CostSummary| c.io * 8 + (c.nested.len() as u32) * 4 + c.loops * 2 + c.alloc;
            score(&b.1 .2).cmp(&score(&a.1 .2)).then(a.0.cmp(b.0))
        });
        for (i, (rank, (order, sites, cost))) in ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let score = cost.io * 8 + (cost.nested.len() as u32) * 4 + cost.loops * 2 + cost.alloc;
            out.push_str(&format!(
                "{{\"rank\":\"{}\",\"order\":{},\"sites\":{},\"io\":{},\"alloc\":{},\
                 \"loops\":{},\"nested\":[{}],\"score\":{}}}",
                esc(rank),
                order,
                sites,
                cost.io,
                cost.alloc,
                cost.loops,
                cost.nested
                    .iter()
                    .map(|r| format!("\"{}\"", esc(r)))
                    .collect::<Vec<_>>()
                    .join(","),
                score
            ));
        }
        out.push_str("]}");
        out
    }
}

/// RFC 8259 string escape (subset: the characters our identifiers and
/// paths can contain).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One function body prepared for guard accounting.
struct FnBody {
    /// Index into `graph.fns`.
    id: usize,
    /// Workspace-relative file.
    rel: String,
    cfg: Cfg,
    /// `(rank, order)` per acquire site, `None` for unranked.
    site_rank: Vec<Option<(&'static str, u32)>>,
}

/// Runs the pass: appends lint findings to `out` and returns the full
/// contention report (empty when the tree has no rank table).
pub fn lock_cost(
    ctx: &Context,
    graph: &CallGraph,
    files: &[SourceData],
    out: &mut Vec<Finding>,
) -> LockCostReport {
    let Some(ranks) = &ctx.ranks else {
        return LockCostReport::default();
    };
    let order_of = |rank: &str| {
        ranks
            .entries
            .iter()
            .find(|(n, _)| n == rank)
            .map(|(_, o)| *o)
    };

    let mut by_site: HashMap<(&str, u32, &str), usize> = HashMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        by_site.insert((f.file.as_str(), f.line, f.name.as_str()), i);
    }

    // Lower every non-test function once; keep the CFGs (guard
    // accounting needs them, and the own-summary pass reads them).
    let mut bodies: Vec<FnBody> = Vec::new();
    for file in files {
        let Some(ast) = &file.ast else { continue };
        let fields = rules::ranked_fields(&file.rel);
        rules::for_each_fn(&ast.items, &mut |f| {
            let Some(&id) = by_site.get(&(file.rel.as_str(), f.line, f.name.as_str())) else {
                return;
            };
            if graph.fns[id].in_test || f.body.is_none() {
                return;
            }
            let g = cfg::lower_fn(f);
            let site_rank = rules::site_ranks(&g, &fields, &order_of);
            bodies.push(FnBody {
                id,
                rel: file.rel.clone(),
                cfg: g,
                site_rank,
            });
        });
    }

    // Phase 1: each function's own cost.
    let mut own: Vec<CostSummary> = (0..graph.fns.len())
        .map(|_| CostSummary::default())
        .collect();
    for b in &bodies {
        let s = &mut own[b.id];
        for blk in &b.cfg.blocks {
            for op in &blk.ops {
                match op {
                    Op::Io { .. } | Op::Tick { .. } => s.io = (s.io + 1).min(CAP),
                    Op::Alloc { .. } => s.alloc = (s.alloc + 1).min(CAP),
                    Op::Loop { .. } => s.loops = (s.loops + 1).min(CAP),
                    Op::Acquire(i) => {
                        if let Some((rank, _)) = b.site_rank[*i] {
                            s.nested.insert(rank);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Phase 2: summary fixpoint over the call graph. summary[f] =
    // own[f] + Σ summary[callee]; counts are capped and the rank set
    // is finite, so the ascent terminates through cycles.
    let mut summary = own.clone();
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            let mut s = own[i].clone();
            for &t in &graph.edges[i] {
                let callee = summary[t].clone();
                s.absorb(&callee);
            }
            if s != summary[i] {
                summary[i] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 3: per-guard attribution via the HeldLocks replay.
    let reach = graph.reach_from_named(HOT_ROOTS);
    let mut report = LockCostReport::default();
    for b in &bodies {
        if !b.site_rank.iter().any(Option::is_some) {
            continue;
        }
        let analysis = rules::HeldLocks {
            acquires: &b.cfg.acquires,
        };
        let held = dataflow::solve(&b.cfg, &analysis);
        let mut costs: Vec<CostSummary> = (0..b.cfg.acquires.len())
            .map(|_| CostSummary::default())
            .collect();
        for blk in 0..b.cfg.blocks.len() {
            dataflow::walk_ops(&b.cfg, &analysis, &held, blk, |_, op, live| {
                if live.is_empty() {
                    return;
                }
                let mut delta = CostSummary::default();
                match op {
                    Op::Io { .. } | Op::Tick { .. } => delta.io = 1,
                    Op::Alloc { .. } => delta.alloc = 1,
                    Op::Loop { .. } => delta.loops = 1,
                    Op::Acquire(j) => {
                        if let Some((rank, _)) = b.site_rank[*j] {
                            delta.nested.insert(rank);
                        }
                    }
                    Op::Call {
                        name,
                        arity,
                        is_method,
                        qual,
                        line,
                        ..
                    } => {
                        let site = CallSite {
                            name: name.clone(),
                            arity: *arity,
                            is_method: *is_method,
                            qual: qual.clone(),
                            line: *line,
                        };
                        for t in graph.resolve(b.id, &site) {
                            delta.absorb(&summary[t]);
                        }
                    }
                    _ => return,
                }
                if delta == CostSummary::default() {
                    return;
                }
                for &h in live.iter() {
                    if b.site_rank[h].is_some() {
                        costs[h].absorb(&delta);
                    }
                }
            });
        }
        for (i, site) in b.cfg.acquires.iter().enumerate() {
            let Some((rank, order)) = b.site_rank[i] else {
                continue;
            };
            report.guards.push(GuardCost {
                rank,
                order,
                file: b.rel.clone(),
                line: site.line,
                function: graph.fns[b.id].qualified(),
                method: site.method.clone(),
                hot: reach.reachable[b.id],
                cost: costs[i].clone(),
            });
        }
    }
    report.guards.sort_by(|a, b| {
        b.score()
            .cmp(&a.score())
            .then(a.rank.cmp(b.rank))
            .then(a.file.cmp(&b.file))
            .then(a.line.cmp(&b.line))
    });

    // Findings: hot-path guards held across I/O or a nested ranked
    // acquisition. Alloc/loop pressure is report-only.
    for g in &report.guards {
        if !g.hot || (g.cost.io == 0 && g.cost.nested.is_empty()) {
            continue;
        }
        let mut what = Vec::new();
        if g.cost.io > 0 {
            what.push(format!("{} injectable I/O op(s)", g.cost.io));
        }
        if !g.cost.nested.is_empty() {
            what.push(format!(
                "nested ranked acquisition(s) of {}",
                g.cost
                    .nested
                    .iter()
                    .map(|r| format!("\"{r}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push(Finding {
            file: g.file.clone(),
            line: g.line,
            lint: "lock-cost",
            message: format!(
                "hot-path critical section of \"{}\" (order {}, .{}()) statically executes {} \
                 while the guard is live — shrink the section, drop the guard first, or shard \
                 the lock (full ranking: target/analysis/lock-cost.json)",
                g.rank,
                g.order,
                g.method,
                what.join(" and ")
            ),
        });
    }
    report
}
