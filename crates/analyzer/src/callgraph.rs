//! Whole-workspace call graph with per-function panic summaries.
//!
//! Built from the parsed ASTs of every workspace file. Calls are
//! resolved *nominally* — by name, arity, and receiver kind, scoped to
//! the caller's crate and its workspace dependencies (parsed from
//! `Cargo.toml`) — because the analyzer has no type information. That
//! over-approximates the real graph: a call may resolve to several
//! same-named functions, and edges never go missing, which is the safe
//! direction for a reachability *proof* (a panic can be reported
//! spuriously but not silently missed by resolution).
//!
//! The per-function **panic summary** is the list of sites where the
//! function itself can abort:
//!
//! * `panic!` / `todo!` / `unimplemented!` / `unreachable!`
//! * `.unwrap()` / `.expect(..)`
//! * `base[index]` with no *dominating bounds observation*: an index
//!   is considered guarded when, on every path reaching it, the same
//!   receiver (by flattened text) already had `.len()`, `.is_empty()`,
//!   `.get()`, `.get_mut()`, `.contains_key()`, `.contains()`,
//!   `.first()` or `.last()` called on it (a must-dataflow over the
//!   CFG), or when the index is visibly masked (`x & LITERAL`,
//!   `x % m`). The heuristic checks that bounds were *considered*, not
//!   that the comparison is correct — liquid-check covers the rest
//!   dynamically.
//!
//! `assert!`-family macros are deliberately *not* panic sites: like
//! the `sim` crate's contract aborts, they state invariants whose
//! violation should stop the process even on a fault path.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::ast::{self, Expr, File, Item};
use crate::cfg::{self, Op};
use crate::dataflow::{self, Analysis};
use crate::in_test;

/// One parsed workspace file handed to [`CallGraph::build`].
pub struct SourceFile<'a> {
    /// Workspace-relative path (`crates/<name>/src/...`).
    pub rel: &'a str,
    /// Parsed AST.
    pub ast: &'a File,
    /// `#[cfg(test)]`/`#[test]` line regions.
    pub test_regions: &'a [(u32, u32)],
}

/// A site where a function can abort the process.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based source line.
    pub line: u32,
    /// What panics (`` `.unwrap()` ``, `` `panic!` ``, "indexing
    /// `xs`"), ready for embedding in a message.
    pub what: String,
    /// Whether this is an indexing site (reported only when reachable,
    /// unlike the explicit panic family).
    pub indexing: bool,
}

/// An unresolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (method name or last path segment).
    pub name: String,
    /// Argument count (receiver excluded).
    pub arity: usize,
    /// Whether this was `recv.name(...)`.
    pub is_method: bool,
    /// First path segment of a qualified call (`Segment::open` →
    /// `Segment`, `liquid_log::storage::fsync` → `liquid_log`).
    pub qual: Option<String>,
    /// 1-based source line.
    pub line: u32,
}

/// One function in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Crate directory name (`log`, `messaging`, …).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` (first word, generics
    /// stripped), if any.
    pub self_ty: Option<String>,
    /// Whether the function is `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// Whether it takes `self`.
    pub has_self: bool,
    /// Parameter count excluding `self`.
    pub arity: usize,
    /// Whether the declared return type mentions `Result`.
    pub returns_result: bool,
    /// 1-based line of the `fn`.
    pub line: u32,
    /// Whether the function sits in a test region.
    pub in_test: bool,
    /// Sites where this function itself can abort.
    pub panics: Vec<PanicSite>,
    /// Unresolved outgoing calls.
    pub calls: Vec<CallSite>,
}

impl FnNode {
    /// `crate::Type::name` / `crate::name` display form.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{}::{}::{}", self.crate_name, ty, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// The workspace call graph.
pub struct CallGraph {
    /// All collected functions.
    pub fns: Vec<FnNode>,
    /// Resolved edges: `edges[f]` = indices of possible callees.
    pub edges: Vec<Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
    /// Workspace-internal dependencies: crate → crates it depends on.
    deps: BTreeMap<String, Vec<String>>,
}

/// Result of the reachability closure from a set of root functions.
pub struct Reachability {
    /// `parent[f]` = the caller through which `f` was first reached
    /// (`None` for roots and unreachable functions).
    pub parent: Vec<Option<usize>>,
    /// Whether each function is reachable from a root.
    pub reachable: Vec<bool>,
}

impl CallGraph {
    /// Builds the graph. `deps` maps crate directory names to the
    /// crate directory names they depend on (empty map → no crate
    /// scoping, used by small fixture trees without Cargo.toml).
    pub fn build(files: &[SourceFile<'_>], deps: BTreeMap<String, Vec<String>>) -> CallGraph {
        let mut fns = Vec::new();
        for f in files {
            let crate_name = f
                .rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .unwrap_or("")
                .to_string();
            collect_items(
                &f.ast.items,
                &crate_name,
                f.rel,
                f.test_regions,
                None,
                &mut fns,
            );
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut graph = CallGraph {
            fns,
            edges: Vec::new(),
            by_name,
            deps,
        };
        graph.edges = (0..graph.fns.len())
            .map(|i| {
                let mut out = BTreeSet::new();
                if !graph.fns[i].in_test {
                    for call in &graph.fns[i].calls {
                        for t in graph.resolve(i, call) {
                            out.insert(t);
                        }
                    }
                }
                out.into_iter().collect()
            })
            .collect();
        graph
    }

    /// Nominal resolution of one call site (see module docs).
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let from = &self.fns[caller];
        cands
            .iter()
            .copied()
            .filter(|&c| {
                let f = &self.fns[c];
                if f.in_test || f.has_self != call.is_method || f.arity != call.arity {
                    return false;
                }
                if !self.in_scope(&from.crate_name, &f.crate_name) {
                    return false;
                }
                match call.qual.as_deref() {
                    None => true,
                    Some("Self") => {
                        f.self_ty.is_some() && f.self_ty == from.self_ty && !call.is_method
                    }
                    Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                        f.self_ty.as_deref() == Some(q)
                    }
                    Some(q) => match crate_of_alias(q) {
                        Some(krate) => f.crate_name == krate,
                        None => true, // module-qualified: modules unmodeled
                    },
                }
            })
            .collect()
    }

    fn in_scope(&self, from: &str, to: &str) -> bool {
        if self.deps.is_empty() || from == to {
            return true;
        }
        self.deps
            .get(from)
            .is_some_and(|ds| ds.iter().any(|d| d == to))
    }

    /// Breadth-first closure from every public function of the given
    /// crates, stopping at (not descending into) `stop_crates`.
    pub fn reach_from_pubs(&self, root_crates: &[&str], stop_crates: &[&str]) -> Reachability {
        let n = self.fns.len();
        let mut parent = vec![None; n];
        let mut reachable = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for (i, f) in self.fns.iter().enumerate() {
            if f.is_pub && !f.in_test && root_crates.contains(&f.crate_name.as_str()) {
                reachable[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            if stop_crates.contains(&self.fns[i].crate_name.as_str()) {
                continue; // boundary: reachable, but not traversed through
            }
            for &t in &self.edges[i] {
                if !reachable[t] {
                    reachable[t] = true;
                    parent[t] = Some(i);
                    queue.push_back(t);
                }
            }
        }
        Reachability { parent, reachable }
    }

    /// The call chain from a root to `id`, rendered as
    /// `a::b → c::d → e::f`.
    pub fn chain(&self, reach: &Reachability, id: usize) -> String {
        let mut names = vec![self.fns[id].qualified()];
        let mut cur = id;
        let mut hops = 0;
        while let Some(p) = reach.parent[cur] {
            names.push(self.fns[p].qualified());
            cur = p;
            hops += 1;
            if hops > 64 {
                break;
            }
        }
        names.reverse();
        names.join(" → ")
    }

    /// Breadth-first closure from every non-test function whose *name*
    /// is in `root_names` (the hot-path entry points). Unlike
    /// [`reach_from_pubs`] the roots are named functions, not whole
    /// crates, so the closure is the precise dynamic extent of the hot
    /// path.
    ///
    /// [`reach_from_pubs`]: Self::reach_from_pubs
    pub fn reach_from_named(&self, root_names: &[&str]) -> Reachability {
        let n = self.fns.len();
        let mut parent = vec![None; n];
        let mut reachable = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for (i, f) in self.fns.iter().enumerate() {
            if !f.in_test && root_names.contains(&f.name.as_str()) {
                reachable[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &t in &self.edges[i] {
                if !reachable[t] {
                    reachable[t] = true;
                    parent[t] = Some(i);
                    queue.push_back(t);
                }
            }
        }
        Reachability { parent, reachable }
    }

    /// The call chain from a root to `id` with a `file:line` witness
    /// per hop: `a::b (crates/a/src/lib.rs:10) → c::d (…:42)`.
    pub fn witness(&self, reach: &Reachability, id: usize) -> String {
        let mut hops_out = Vec::new();
        let mut cur = id;
        let mut hops = 0;
        loop {
            let f = &self.fns[cur];
            hops_out.push(format!("{} ({}:{})", f.qualified(), f.file, f.line));
            match reach.parent[cur] {
                Some(p) if hops <= 64 => {
                    cur = p;
                    hops += 1;
                }
                _ => break,
            }
        }
        hops_out.reverse();
        hops_out.join(" → ")
    }

    /// Renders the resolved graph as GraphViz DOT, clustered by crate.
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph liquid_callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n",
        );
        let mut crates: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            if !f.in_test {
                crates.entry(&f.crate_name).or_default().push(i);
            }
        }
        for (krate, ids) in &crates {
            out.push_str(&format!(
                "  subgraph \"cluster_{krate}\" {{\n    label=\"{krate}\";\n"
            ));
            for &i in ids {
                let f = &self.fns[i];
                let style = if f.panics.is_empty() {
                    ""
                } else {
                    ", style=filled, fillcolor=\"#ffdddd\""
                };
                out.push_str(&format!("    n{i} [label=\"{}\"{style}];\n", f.qualified()));
            }
            out.push_str("  }\n");
        }
        for (i, succs) in self.edges.iter().enumerate() {
            for &t in succs {
                out.push_str(&format!("  n{i} -> n{t};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The receiver type a parameter annotation names, if it is a plain
/// (possibly referenced) workspace-shaped type: `& mut RecordBatch` →
/// `RecordBatch`. Std wrappers and generics yield `None` — resolving
/// through them needs real type inference, and a wrong qualifier would
/// *drop* edges, which is the unsafe direction.
fn param_type_head(ty: &str) -> Option<String> {
    let head = ty
        .split_whitespace()
        .find(|t| !matches!(*t, "&" | "mut") && !t.starts_with('\''))?;
    let plain = head.chars().all(|c| c.is_alphanumeric() || c == '_');
    let concrete = head.chars().next().is_some_and(char::is_uppercase) && head.len() > 1;
    let wrapper = matches!(
        head,
        "Box"
            | "Arc"
            | "Rc"
            | "Option"
            | "Result"
            | "Vec"
            | "String"
            | "HashMap"
            | "HashSet"
            | "BTreeMap"
            | "BTreeSet"
            | "VecDeque"
            | "Mutex"
            | "RwLock"
            | "RefCell"
            | "Cell"
            | "PathBuf"
            | "Path"
            | "Cow"
            | "Duration"
            | "Instant"
    );
    (plain && concrete && !wrapper).then(|| head.to_string())
}

/// The crate directory behind a `liquid_*` path qualifier
/// (`liquid_log` → `log`, `liquid` → `core`), or `None` for plain
/// module names.
fn crate_of_alias(q: &str) -> Option<String> {
    if q == "liquid" {
        return Some("core".to_string());
    }
    q.strip_prefix("liquid_").map(|rest| rest.to_string())
}

fn collect_items(
    items: &[Item],
    crate_name: &str,
    rel: &str,
    regions: &[(u32, u32)],
    self_ty: Option<&str>,
    out: &mut Vec<FnNode>,
) {
    for item in items {
        match item {
            Item::Fn(f) => collect_fn(f, crate_name, rel, regions, self_ty, out),
            Item::Impl {
                self_ty: ty, items, ..
            } => {
                let first = ty.split_whitespace().next().unwrap_or(ty);
                collect_items(items, crate_name, rel, regions, Some(first), out);
            }
            Item::Trait { items, .. } => {
                collect_items(items, crate_name, rel, regions, None, out);
            }
            Item::Mod { items, .. } => {
                collect_items(items, crate_name, rel, regions, self_ty, out);
            }
            Item::Struct(_) | Item::Other { .. } => {}
        }
    }
}

fn collect_fn(
    f: &ast::Fn,
    crate_name: &str,
    rel: &str,
    regions: &[(u32, u32)],
    self_ty: Option<&str>,
    out: &mut Vec<FnNode>,
) {
    let mut panics = Vec::new();
    let mut calls = Vec::new();
    // Receiver types knowable without inference: `self`, and parameters
    // with a plain workspace-type annotation. Lets `batch.records()`
    // resolve to `RecordBatch::records` instead of every `records`.
    let mut var_tys: HashMap<String, String> = HashMap::new();
    for p in &f.params {
        let mut bound = Vec::new();
        p.pat.bound_names(&mut bound);
        if let ([name], Some(ty)) = (bound.as_slice(), param_type_head(&p.ty)) {
            var_tys.insert(name.clone(), ty);
        }
    }
    if let Some(body) = &f.body {
        ast::walk_block(body, &mut |e| match e {
            Expr::MacroCall { name, line, .. }
                if matches!(
                    name.as_str(),
                    "panic" | "todo" | "unimplemented" | "unreachable"
                ) =>
            {
                panics.push(PanicSite {
                    line: *line,
                    what: format!("`{name}!`"),
                    indexing: false,
                });
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                if matches!(method.as_str(), "unwrap" | "expect") {
                    panics.push(PanicSite {
                        line: *line,
                        what: format!("`.{method}()`"),
                        indexing: false,
                    });
                }
                let qual = match recv.as_ref() {
                    Expr::Path { segs, .. } if segs.len() == 1 => {
                        if segs[0] == "self" {
                            self_ty.map(str::to_string)
                        } else {
                            var_tys.get(&segs[0]).cloned()
                        }
                    }
                    _ => None,
                };
                calls.push(CallSite {
                    name: method.clone(),
                    arity: args.len(),
                    is_method: true,
                    qual,
                    line: *line,
                });
            }
            Expr::Call { callee, args, line } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(name) = segs.last() {
                        calls.push(CallSite {
                            name: name.clone(),
                            arity: args.len(),
                            is_method: false,
                            qual: (segs.len() > 1).then(|| segs[0].clone()),
                            line: *line,
                        });
                    }
                }
            }
            _ => {}
        });
        // Unguarded indexing sites, via the must-bounds dataflow.
        let g = cfg::lower_fn(f);
        let must = dataflow::solve(&g, &MustBounds);
        for b in 0..g.blocks.len() {
            dataflow::walk_ops(&g, &MustBounds, &must, b, |_, op, fact| {
                if let Op::Index {
                    recv,
                    masked: false,
                    line,
                } = op
                {
                    match fact {
                        Some(seen) if seen.contains(recv) => {}
                        None => {} // unreachable block
                        Some(_) => panics.push(PanicSite {
                            line: *line,
                            what: format!("indexing `{recv}`"),
                            indexing: true,
                        }),
                    }
                }
            });
        }
    }
    panics.sort_by_key(|p| p.line);
    panics.dedup_by(|a, b| a.line == b.line && a.what == b.what);
    out.push(FnNode {
        crate_name: crate_name.to_string(),
        file: rel.to_string(),
        name: f.name.clone(),
        self_ty: self_ty.map(str::to_string),
        is_pub: f.is_pub,
        has_self: f.has_self,
        arity: f.params.len(),
        returns_result: f.ret.as_deref().is_some_and(|r| r.contains("Result")),
        line: f.line,
        in_test: in_test(regions, f.line),
        panics,
        calls,
    });
    // Nested function items inside the body.
    if let Some(body) = &f.body {
        for stmt in &body.stmts {
            if let ast::Stmt::Item(item) = stmt {
                if let Item::Fn(nested) = item.as_ref() {
                    collect_fn(nested, crate_name, rel, regions, None, out);
                }
            }
        }
    }
}

/// Forward must-analysis: the set of receivers (by flattened text)
/// that have had a bounds-relevant observation on *every* path.
/// `None` is the "unvisited" top element.
pub struct MustBounds;

impl Analysis for MustBounds {
    type Fact = Option<BTreeSet<String>>;
    const BACKWARD: bool = false;

    fn boundary(&self) -> Self::Fact {
        Some(BTreeSet::new())
    }

    fn init(&self) -> Self::Fact {
        None
    }

    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool {
        match (fact.as_mut(), other) {
            (_, None) => false,
            (None, Some(o)) => {
                *fact = Some(o.clone());
                true
            }
            (Some(f), Some(o)) => {
                let before = f.len();
                f.retain(|x| o.contains(x));
                f.len() != before
            }
        }
    }

    fn transfer(&self, op: &Op, fact: &mut Self::Fact) {
        let Some(set) = fact.as_mut() else { return };
        match op {
            Op::LenObserve { recv } => {
                set.insert(recv.clone());
            }
            // Redefinition invalidates observations made through the
            // rebound name.
            Op::Assign { to, .. } | Op::Kill { var: to, .. } => {
                set.retain(|r| r.split(['.', '[']).next().is_none_or(|head| head != to));
            }
            _ => {}
        }
    }
}
