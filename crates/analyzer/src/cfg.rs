//! Intra-procedural control-flow graphs lowered from the AST.
//!
//! The CFG does not try to be a general-purpose IR: each basic block
//! carries a sequence of [`Op`]s — the *rule-relevant events* of the
//! function (lock acquisitions, fault-injection ticks, raw I/O,
//! variable mentions and assignments, length observations, indexing,
//! raw arithmetic) — in evaluation order, with edges for `if`/`match`
//! branches, loop back edges, and the early exits introduced by
//! `return` and `?`. Closures are lowered as *optional* branches
//! (taken zero or one time), which over-approximates both "never runs"
//! and "runs many times" for the may-analyses built on top.
//!
//! The flow-sensitive rules in [`crate::rules`] run the generic
//! worklist solver in [`crate::dataflow`] over these ops.

use crate::ast::{Block as AstBlock, Expr, Fn, Pat, Stmt};

/// One rule-relevant event inside a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A ranked-lock-shaped acquisition (`recv.lock()` / `.read()` /
    /// `.write()` with no arguments). Index into [`Cfg::acquires`].
    Acquire(usize),
    /// A named guard (or any binding) dies: `drop(var)`, scope end, or
    /// shadowing.
    Kill {
        /// The binding that dies.
        var: String,
        /// 1-based source line of an explicit `drop(var)` or shadowing
        /// `let`; `0` for scope-end and pattern-rebinding kills, which
        /// have no single source line. The atomicity pass renders `0`
        /// as "scope end" in its drop-site witness hops.
        line: u32,
    },
    /// End of statement: temporary (unbound) guards die.
    KillTemps,
    /// A fault-injection `injector.tick("...")` call.
    Tick {
        /// 1-based source line.
        line: u32,
    },
    /// Raw filesystem I/O (`std::fs`, `File::`, `OpenOptions::`).
    Io {
        /// 1-based source line.
        line: u32,
    },
    /// A read of a local identifier (liveness "use").
    Mention {
        /// Identifier text.
        name: String,
    },
    /// `let to = …` / `to = …` where the right-hand side mentions
    /// `froms` (alias and taint propagation; liveness "def").
    Assign {
        /// Binding being (re)defined.
        to: String,
        /// Identifier-ish names appearing in the right-hand side:
        /// bare locals, field names, and method names.
        froms: Vec<String>,
        /// 1-based source line.
        line: u32,
    },
    /// A bounds-relevant observation on a receiver: `.len()`,
    /// `.is_empty()`, `.get()`, `.get_mut()`, `.contains_key()`,
    /// `.contains()`, `.first()`, `.last()`.
    LenObserve {
        /// Flattened receiver text (see [`flatten`]).
        recv: String,
    },
    /// An `expr[index]` that can panic. `masked` is true when the
    /// index is visibly bounded (`x & LITERAL` or `x % len`).
    Index {
        /// Flattened receiver text.
        recv: String,
        /// Whether the index is mask/modulo-bounded.
        masked: bool,
        /// 1-based source line.
        line: u32,
    },
    /// A raw `+`/`-`/`*` (binary or compound assignment) over the
    /// named sources.
    Arith {
        /// The operator character.
        op: char,
        /// Names feeding either operand (locals, field names, method
        /// names).
        names: Vec<String>,
        /// 1-based source line.
        line: u32,
    },
    /// Any function or method call, kept in evaluation order so the
    /// interprocedural passes (hot-copy taint, lock-cost summaries)
    /// can resolve what executes under a live guard. Special-cased
    /// calls (`lock`/`tick`/`drop`) are emitted as their dedicated ops
    /// instead, never as `Call`.
    Call {
        /// Final segment of the callee (`Vec::with_capacity` →
        /// `with_capacity`).
        name: String,
        /// Argument count (`self` excluded).
        arity: usize,
        /// Whether the call is `recv.name(...)`.
        is_method: bool,
        /// Path qualifier for free calls (`Vec::with_capacity` →
        /// `Vec`), or `None` for bare/method calls.
        qual: Option<String>,
        /// Names mentioned by the receiver (empty for free calls).
        /// Kept separate from `arg_names` so taint sinks can tell a
        /// tainted *source* from a tainted *destination*
        /// (`buf.extend_from_slice(&value)` copies payload;
        /// `buf.extend_from_slice(&header)` does not, even when `buf`
        /// holds payload).
        recv_names: Vec<String>,
        /// Names mentioned by the arguments, in order.
        arg_names: Vec<String>,
        /// 1-based source line.
        line: u32,
    },
    /// A heap allocation on the hot path: `Vec::with_capacity`,
    /// `.to_vec()`, `.collect()`, `format!`/`vec!`, `Box::new`, ….
    Alloc {
        /// What allocated (method or macro name), for messages.
        what: String,
        /// 1-based source line.
        line: u32,
    },
    /// Entry into a `for`/`while`/`loop` body — loops over partitions
    /// or records are unbounded work when executed under a guard.
    Loop {
        /// 1-based source line.
        line: u32,
    },
}

/// One lock-shaped acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquireSite {
    /// The binding holding the guard (`let g = x.lock()`), or `None`
    /// for a temporary that dies at end of statement.
    pub var: Option<String>,
    /// Final field/identifier name of the receiver (`self.inner.state`
    /// → `state`): the key into the ranked-lock table.
    pub field: String,
    /// The method used (`lock`, `read`, `write`).
    pub method: String,
    /// 1-based source line.
    pub line: u32,
}

/// A basic block: straight-line ops plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// Events in evaluation order.
    pub ops: Vec<Op>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function body.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks; `blocks[entry]` and `blocks[exit]` delimit the
    /// function.
    pub blocks: Vec<BasicBlock>,
    /// Acquisition sites referenced by [`Op::Acquire`].
    pub acquires: Vec<AcquireSite>,
    /// Entry block index (always 0).
    pub entry: usize,
    /// Exit block index (always 1); `return` and `?` edges land here.
    pub exit: usize,
}

impl Cfg {
    /// Predecessor lists, computed on demand.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

/// Lowers a function body to a CFG. Functions without a body (trait
/// method signatures) yield an entry→exit graph with no ops.
pub fn lower_fn(f: &Fn) -> Cfg {
    let mut b = Builder {
        cfg: Cfg {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            acquires: Vec::new(),
            entry: 0,
            exit: 1,
        },
        cur: 0,
        loops: Vec::new(),
    };
    if let Some(body) = &f.body {
        b.lower_block(body);
    }
    let exit = b.cfg.exit;
    b.edge_to(exit);
    b.cfg
}

/// Flattens an expression to stable receiver text for matching
/// observations to uses: `self.inner.state` → `self.inner.state`,
/// `xs[i].field` → `xs[..].field`, method calls keep their name.
pub fn flatten(e: &Expr) -> String {
    match e {
        Expr::Path { segs, .. } => segs.join("::"),
        Expr::FieldAccess { base, name, .. } => format!("{}.{name}", flatten(base)),
        Expr::Index { base, .. } => format!("{}[..]", flatten(base)),
        Expr::MethodCall { recv, method, .. } => format!("{}.{method}()", flatten(recv)),
        Expr::Call { callee, .. } => format!("{}()", flatten(callee)),
        Expr::Ref { expr, .. } | Expr::Unary { operand: expr, .. } => flatten(expr),
        Expr::Try { expr, .. } | Expr::Cast { expr, .. } => flatten(expr),
        _ => "?".to_string(),
    }
}

/// The final field/identifier name of a receiver chain
/// (`self.inner.state` → `state`).
pub fn last_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } => segs.last().cloned(),
        Expr::FieldAccess { name, .. } => Some(name.clone()),
        Expr::MethodCall { method, .. } => Some(method.clone()),
        Expr::Index { base, .. } => last_name(base),
        Expr::Ref { expr, .. } | Expr::Unary { operand: expr, .. } => last_name(expr),
        Expr::Try { expr, .. } | Expr::Cast { expr, .. } => last_name(expr),
        _ => None,
    }
}

/// Collects the identifier-ish names an expression mentions: bare
/// (single-segment) path idents, field-access names, and method names,
/// recursively. Used for assignment/taint sources and arithmetic
/// operands.
pub fn names(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Path { segs, .. } => {
            if segs.len() == 1 {
                out.push(segs[0].clone());
            }
        }
        Expr::Lit { .. } => {}
        Expr::FieldAccess { base, name, .. } => {
            out.push(name.clone());
            names(base, out);
        }
        Expr::MethodCall {
            recv, method, args, ..
        } => {
            out.push(method.clone());
            names(recv, out);
            for a in args {
                names(a, out);
            }
        }
        Expr::Call { callee, args, .. } => {
            names(callee, out);
            for a in args {
                names(a, out);
            }
        }
        Expr::Index { base, index, .. } => {
            names(base, out);
            names(index, out);
        }
        Expr::Binary { lhs, rhs, .. } => {
            names(lhs, out);
            names(rhs, out);
        }
        Expr::Unary { operand, .. } => names(operand, out),
        Expr::Assign { lhs, rhs, .. } => {
            names(lhs, out);
            names(rhs, out);
        }
        Expr::Ref { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            names(expr, out)
        }
        Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
            for e in elems {
                names(e, out);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(lo) = lo {
                names(lo, out);
            }
            if let Some(hi) = hi {
                names(hi, out);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                names(a, out);
            }
        }
        Expr::StructLit { fields, base, .. } => {
            for (_, v) in fields {
                names(v, out);
            }
            if let Some(b) = base {
                names(b, out);
            }
        }
        Expr::Return { value, .. } | Expr::Break { value, .. } => {
            if let Some(v) = value {
                names(v, out);
            }
        }
        // Control-flow expressions in value position: conservatively
        // collect from the scrutinee/condition only; their bodies get
        // their own ops during lowering.
        Expr::If { cond, .. } => names(cond, out),
        Expr::Match { scrutinee, .. } => names(scrutinee, out),
        Expr::While { cond, .. } => names(cond, out),
        Expr::For { iter, .. } => names(iter, out),
        Expr::Closure { body, .. } => names(body, out),
        Expr::Loop { .. } | Expr::Block(_) | Expr::Continue { .. } => {}
    }
}

struct LoopCtx {
    head: usize,
    exit: usize,
}

struct Builder {
    cfg: Cfg,
    cur: usize,
    loops: Vec<LoopCtx>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.cfg.blocks.push(BasicBlock::default());
        self.cfg.blocks.len() - 1
    }

    fn push(&mut self, op: Op) {
        self.cfg.blocks[self.cur].ops.push(op);
    }

    fn edge_to(&mut self, to: usize) {
        if !self.cfg.blocks[self.cur].succs.contains(&to) {
            self.cfg.blocks[self.cur].succs.push(to);
        }
    }

    /// Ends the current block with an edge to `to` and switches to a
    /// fresh block (used after `return`/`break`/`continue`; the fresh
    /// block is unreachable unless something else jumps to it).
    fn divert(&mut self, to: usize) {
        self.edge_to(to);
        self.cur = self.new_block();
    }

    fn lower_block(&mut self, block: &AstBlock) {
        let mut scope: Vec<String> = Vec::new();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    init,
                    else_block,
                    line,
                } => {
                    let mut bound = Vec::new();
                    pat.bound_names(&mut bound);
                    // Shadowing kills the previous binding of each name
                    // (including a previous guard). This must precede the
                    // initializer: the acquire site the init may create is
                    // about to be named after the same binding, and the
                    // shadow-kill must not destroy the new guard.
                    for name in &bound {
                        self.push(Op::Kill {
                            var: name.clone(),
                            line: *line,
                        });
                    }
                    let acquires_before = self.cfg.acquires.len();
                    if let Some(init) = init {
                        self.lower_expr(init);
                    }
                    // A single-binding `let` names the guard acquired in
                    // its initializer (if any).
                    if bound.len() == 1 {
                        if let Some(site) = self.cfg.acquires[acquires_before..]
                            .iter_mut()
                            .rev()
                            .find(|s| s.var.is_none())
                        {
                            site.var = Some(bound[0].clone());
                        }
                    }
                    let mut froms = Vec::new();
                    if let Some(init) = init {
                        names(init, &mut froms);
                    }
                    for name in &bound {
                        self.push(Op::Assign {
                            to: name.clone(),
                            froms: froms.clone(),
                            line: *line,
                        });
                        if !scope.contains(name) {
                            scope.push(name.clone());
                        }
                    }
                    if let Some(else_block) = else_block {
                        // `let … else { diverges }`: the else branch
                        // runs when the pattern fails, then diverges.
                        let merge = self.new_block();
                        let else_b = self.new_block();
                        self.edge_to(merge);
                        self.edge_to(else_b);
                        self.cur = else_b;
                        self.lower_block(else_block);
                        let exit = self.cfg.exit;
                        self.edge_to(exit);
                        self.cur = merge;
                    }
                    self.push(Op::KillTemps);
                }
                Stmt::Expr { expr, .. } => {
                    self.lower_expr(expr);
                    self.push(Op::KillTemps);
                }
                Stmt::Item(_) => {}
            }
        }
        for var in scope.iter().rev() {
            self.push(Op::Kill {
                var: var.clone(),
                line: 0,
            });
        }
    }

    fn lower_pat_bindings(&mut self, pat: &Pat, scope: &mut Vec<String>, froms: &[String]) {
        let mut bound = Vec::new();
        pat.bound_names(&mut bound);
        for name in bound {
            self.push(Op::Kill {
                var: name.clone(),
                line: 0,
            });
            self.push(Op::Assign {
                to: name.clone(),
                froms: froms.to_vec(),
                line: 0,
            });
            scope.push(name);
        }
    }

    /// Lowers a block that binds pattern names on entry (loop bodies,
    /// match arms, if-let branches) and kills them on exit.
    fn lower_bound_block(&mut self, pat: Option<&Pat>, source: Option<&Expr>, block: &AstBlock) {
        let mut scope = Vec::new();
        if let Some(pat) = pat {
            let mut froms = Vec::new();
            if let Some(src) = source {
                names(src, &mut froms);
            }
            self.lower_pat_bindings(pat, &mut scope, &froms);
        }
        self.lower_block(block);
        for var in scope.iter().rev() {
            self.push(Op::Kill {
                var: var.clone(),
                line: 0,
            });
        }
    }

    fn lower_opt(&mut self, e: Option<&Expr>) {
        if let Some(e) = e {
            self.lower_expr(e);
        }
    }

    fn lower_expr(&mut self, e: &Expr) {
        match e {
            Expr::Path { segs, line } => {
                if segs.len() == 1 {
                    self.push(Op::Mention {
                        name: segs[0].clone(),
                    });
                } else if is_raw_io_path(segs) {
                    self.push(Op::Io { line: *line });
                }
            }
            Expr::Lit { .. } => {}
            Expr::FieldAccess { base, .. } => self.lower_expr(base),
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                self.lower_expr(recv);
                for a in args {
                    self.lower_expr(a);
                }
                let mut consumed = true;
                match method.as_str() {
                    "lock" | "read" | "write" if args.is_empty() => {
                        if let Some(field) = last_name(recv) {
                            self.cfg.acquires.push(AcquireSite {
                                var: None,
                                field,
                                method: method.clone(),
                                line: *line,
                            });
                            let idx = self.cfg.acquires.len() - 1;
                            self.push(Op::Acquire(idx));
                        }
                    }
                    "tick" => {
                        let recv_name = last_name(recv).unwrap_or_default();
                        if recv_name == "injector" || recv_name.ends_with("_injector") {
                            self.push(Op::Tick { line: *line });
                        } else {
                            consumed = false;
                        }
                    }
                    "len" | "is_empty" | "get" | "get_mut" | "contains_key" | "contains"
                    | "first" | "last" => {
                        self.push(Op::LenObserve {
                            recv: flatten(recv),
                        });
                    }
                    _ => consumed = false,
                }
                if !consumed {
                    if is_alloc_method(method) {
                        self.push(Op::Alloc {
                            what: format!(".{method}()"),
                            line: *line,
                        });
                    }
                    let mut recv_ns = Vec::new();
                    names(recv, &mut recv_ns);
                    let mut arg_ns = Vec::new();
                    for a in args {
                        names(a, &mut arg_ns);
                    }
                    self.push(Op::Call {
                        name: method.clone(),
                        arity: args.len(),
                        is_method: true,
                        qual: None,
                        recv_names: recv_ns,
                        arg_names: arg_ns,
                        line: *line,
                    });
                }
            }
            Expr::Call { callee, args, line } => {
                // `drop(g)` releases the guard without counting as a
                // liveness use of `g`.
                let mut call: Option<(String, Option<String>)> = None;
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if segs.len() == 1 && segs[0] == "drop" && args.len() == 1 {
                        if let Expr::Path { segs: arg, .. } = &args[0] {
                            if arg.len() == 1 {
                                self.push(Op::Kill {
                                    var: arg[0].clone(),
                                    line: *line,
                                });
                                return;
                            }
                        }
                    }
                    if is_raw_io_path(segs) {
                        self.push(Op::Io { line: *line });
                    } else if let Some(name) = segs.last() {
                        call = Some((name.clone(), (segs.len() > 1).then(|| segs[0].clone())));
                    }
                } else {
                    self.lower_expr(callee);
                }
                for a in args {
                    self.lower_expr(a);
                }
                if let Some((name, qual)) = call {
                    if is_alloc_call(&name, qual.as_deref()) {
                        self.push(Op::Alloc {
                            what: match &qual {
                                Some(q) => format!("{q}::{name}"),
                                None => name.clone(),
                            },
                            line: *line,
                        });
                    }
                    let mut arg_ns = Vec::new();
                    for a in args {
                        names(a, &mut arg_ns);
                    }
                    self.push(Op::Call {
                        name,
                        arity: args.len(),
                        is_method: false,
                        qual,
                        recv_names: Vec::new(),
                        arg_names: arg_ns,
                        line: *line,
                    });
                }
            }
            Expr::Index { base, index, line } => {
                self.lower_expr(base);
                self.lower_expr(index);
                self.push(Op::Index {
                    recv: flatten(base),
                    masked: is_masked_index(index),
                    line: *line,
                });
            }
            Expr::Binary { op, lhs, rhs, line } => {
                self.lower_expr(lhs);
                self.lower_expr(rhs);
                if matches!(op.as_str(), "+" | "-" | "*") {
                    let mut ns = Vec::new();
                    names(lhs, &mut ns);
                    names(rhs, &mut ns);
                    self.push(Op::Arith {
                        op: op.chars().next().unwrap_or('+'),
                        names: ns,
                        line: *line,
                    });
                }
            }
            Expr::Unary { operand, .. } => self.lower_expr(operand),
            Expr::Assign { lhs, op, rhs, line } => {
                self.lower_expr(rhs);
                if let Some(op) = op {
                    if matches!(op.as_str(), "+" | "-" | "*") {
                        let mut ns = Vec::new();
                        names(lhs, &mut ns);
                        names(rhs, &mut ns);
                        self.push(Op::Arith {
                            op: op.chars().next().unwrap_or('+'),
                            names: ns,
                            line: *line,
                        });
                    }
                }
                match lhs.as_ref() {
                    Expr::Path { segs, .. } if segs.len() == 1 => {
                        let mut froms = Vec::new();
                        names(rhs, &mut froms);
                        if op.is_some() {
                            // `x += y` reads x too.
                            froms.push(segs[0].clone());
                        }
                        self.push(Op::Assign {
                            to: segs[0].clone(),
                            froms,
                            line: *line,
                        });
                    }
                    other => self.lower_expr(other),
                }
            }
            Expr::Ref { expr, .. } | Expr::Cast { expr, .. } => self.lower_expr(expr),
            Expr::Try { expr, .. } => {
                // `e?`: the error path leaves the function here.
                self.lower_expr(expr);
                let next = self.new_block();
                let exit = self.cfg.exit;
                self.edge_to(exit);
                self.edge_to(next);
                self.cur = next;
            }
            Expr::If {
                pat,
                cond,
                then,
                else_,
                line: _,
            } => {
                self.lower_expr(cond);
                let branch_point = self.cur;
                let then_b = self.new_block();
                let join = self.new_block();
                self.cfg.blocks[branch_point].succs.push(then_b);
                self.cur = then_b;
                self.lower_bound_block(pat.as_ref(), Some(cond), then);
                self.edge_to(join);
                self.cur = branch_point;
                match else_ {
                    Some(else_expr) => {
                        let else_b = self.new_block();
                        self.edge_to(else_b);
                        self.cur = else_b;
                        self.lower_expr(else_expr);
                        self.edge_to(join);
                    }
                    None => self.edge_to(join),
                }
                self.cur = join;
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.lower_expr(scrutinee);
                let branch_point = self.cur;
                let join = self.new_block();
                if arms.is_empty() {
                    // `match never {}`: fall through (scrutinee is !).
                    self.cfg.blocks[branch_point].succs.push(join);
                }
                for arm in arms {
                    let arm_b = self.new_block();
                    self.cfg.blocks[branch_point].succs.push(arm_b);
                    self.cur = arm_b;
                    let mut scope = Vec::new();
                    let mut froms = Vec::new();
                    names(scrutinee, &mut froms);
                    self.lower_pat_bindings(&arm.pat, &mut scope, &froms);
                    if let Some(guard) = &arm.guard {
                        self.lower_expr(guard);
                    }
                    self.lower_expr(&arm.body);
                    for var in scope.iter().rev() {
                        self.push(Op::Kill {
                            var: var.clone(),
                            line: 0,
                        });
                    }
                    self.edge_to(join);
                }
                self.cur = join;
            }
            Expr::While {
                pat,
                cond,
                body,
                line,
            } => {
                self.push(Op::Loop { line: *line });
                let head = self.new_block();
                let exit_b = self.new_block();
                self.edge_to(head);
                self.cur = head;
                self.lower_expr(cond);
                let body_b = self.new_block();
                self.edge_to(body_b);
                self.edge_to(exit_b);
                self.cur = body_b;
                self.loops.push(LoopCtx { head, exit: exit_b });
                self.lower_bound_block(pat.as_ref(), Some(cond), body);
                self.loops.pop();
                self.edge_to(head);
                self.cur = exit_b;
            }
            Expr::Loop { body, line } => {
                self.push(Op::Loop { line: *line });
                let head = self.new_block();
                let exit_b = self.new_block();
                self.edge_to(head);
                self.cur = head;
                self.loops.push(LoopCtx { head, exit: exit_b });
                self.lower_block(body);
                self.loops.pop();
                self.edge_to(head);
                self.cur = exit_b;
            }
            Expr::For {
                pat,
                iter,
                body,
                line,
            } => {
                self.lower_expr(iter);
                self.push(Op::Loop { line: *line });
                let head = self.new_block();
                let exit_b = self.new_block();
                self.edge_to(head);
                self.cur = head;
                let body_b = self.new_block();
                self.edge_to(body_b);
                self.edge_to(exit_b);
                self.cur = body_b;
                self.loops.push(LoopCtx { head, exit: exit_b });
                self.lower_bound_block(Some(pat), Some(iter), body);
                self.loops.pop();
                self.edge_to(head);
                self.cur = exit_b;
            }
            Expr::Block(b) => {
                self.lower_block(b);
            }
            Expr::Return { value, .. } => {
                self.lower_opt(value.as_deref());
                let exit = self.cfg.exit;
                self.divert(exit);
            }
            Expr::Break { value, .. } => {
                self.lower_opt(value.as_deref());
                let target = self.loops.last().map_or(self.cfg.exit, |l| l.exit);
                self.divert(target);
            }
            Expr::Continue { .. } => {
                let target = self.loops.last().map_or(self.cfg.exit, |l| l.head);
                self.divert(target);
            }
            Expr::Closure { params, body, .. } => {
                // Optional branch: the closure may or may not run.
                let clos_b = self.new_block();
                let join = self.new_block();
                self.edge_to(clos_b);
                self.edge_to(join);
                self.cur = clos_b;
                let mut scope = Vec::new();
                for p in params {
                    self.lower_pat_bindings(p, &mut scope, &[]);
                }
                self.lower_expr(body);
                for var in scope.iter().rev() {
                    self.push(Op::Kill {
                        var: var.clone(),
                        line: 0,
                    });
                }
                self.edge_to(join);
                self.cur = join;
            }
            Expr::MacroCall {
                name, args, line, ..
            } => {
                for a in args {
                    self.lower_expr(a);
                }
                if matches!(name.as_str(), "vec" | "format") {
                    self.push(Op::Alloc {
                        what: format!("{name}!"),
                        line: *line,
                    });
                }
            }
            Expr::StructLit { fields, base, .. } => {
                for (_, v) in fields {
                    self.lower_expr(v);
                }
                self.lower_opt(base.as_deref());
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for e in elems {
                    self.lower_expr(e);
                }
            }
            Expr::Range { lo, hi, .. } => {
                self.lower_opt(lo.as_deref());
                self.lower_opt(hi.as_deref());
            }
        }
    }
}

/// Whether an index expression is visibly bounded: `x & LITERAL`,
/// `x % m`, or either of those under an `as` cast.
fn is_masked_index(e: &Expr) -> bool {
    match e {
        Expr::Cast { expr, .. } => is_masked_index(expr),
        Expr::Binary { op, rhs, .. } if op == "&" => {
            matches!(rhs.as_ref(), Expr::Lit { .. } | Expr::Cast { .. })
        }
        Expr::Binary { op, .. } if op == "%" => true,
        _ => false,
    }
}

/// Method calls that allocate a fresh heap buffer (the events the
/// lock-cost pass charges as allocations under a guard).
fn is_alloc_method(method: &str) -> bool {
    // `.clone()` is deliberately absent: on the hot path it is almost
    // always a `Bytes` refcount bump, the sanctioned zero-copy share.
    matches!(method, "to_vec" | "to_owned" | "to_string" | "collect")
}

/// Free/qualified calls that allocate: `Vec::with_capacity`,
/// `Box::new`, `String::from`, `Bytes::copy_from_slice`, ….
fn is_alloc_call(name: &str, qual: Option<&str>) -> bool {
    matches!(name, "with_capacity" | "copy_from_slice")
        || (name == "new" && matches!(qual, Some("Box")))
        || (name == "from" && matches!(qual, Some("String" | "Vec")))
}

/// Whether a multi-segment path is raw filesystem I/O.
fn is_raw_io_path(segs: &[String]) -> bool {
    (segs.len() >= 2 && segs[0] == "std" && segs[1] == "fs")
        || (segs.len() >= 2 && matches!(segs[0].as_str(), "File" | "OpenOptions"))
}
