//! End-to-end fixture tests: each lint gets a minimal workspace tree
//! that trips it (binary exits 1 under `--deny`) and a sibling tree
//! that is clean (exit 0). Trees are written to a per-test temp
//! directory and linted through the real `liquid-lint` binary, so the
//! CLI plumbing (arg parsing, root override, exit codes) is covered
//! too, not just the library.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

/// All fixture crate roots carry this so the forbid-unsafe lint stays
/// quiet in fixtures that target a different lint.
const LIB_HEADER: &str = "#![forbid(unsafe_code)]\n";

/// The real rank table, mirrored into lock-order fixtures so the
/// cross-tree drift check (every `LOCK_FIELDS` rank must be declared)
/// finds nothing to complain about.
const RANKS_RS: &str = r#"
pub const RANKS: &[(&str, u32)] = &[
    ("dfs.state", 96),
    ("dfs.stats", 94),
    ("stack.feeds", 80),
    ("stack.managed", 75),
    ("yarn.state", 70),
    ("producer.batches", 65),
    ("consumer.state", 60),
    ("group.groups", 50),
    ("cluster.state", 40),
    ("partition.state", 35),
    ("offsets.inner", 30),
    ("offsets.shard", 28),
    ("quota.limits", 24),
    ("quota.usage", 23),
    ("quota.throttled", 21),
    ("coord.tree", 15),
    ("job.metrics", 10),
    ("log.readcache", 8),
    ("log.pagecache", 5),
    ("acl.grants", 3),
];
"#;

/// Writes `files` (workspace-relative path, contents) under a fresh
/// temp root and returns the root.
fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("liquid-lint-fixture-{}-{name}", std::process::id()));
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    for (rel, contents) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }
    root
}

fn lint(root: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_liquid-lint"))
        .args(["--deny", "--root"])
        .arg(root)
        .output()
        .unwrap()
}

/// Asserts the tree trips the named lint: exit 1 and at least one
/// finding tagged `[lint]` in the output.
fn assert_hit(root: &PathBuf, lint_name: &str) {
    let out = lint(root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected findings under --deny; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("[{lint_name}]")),
        "expected a [{lint_name}] finding; stdout:\n{stdout}"
    );
}

/// Asserts the tree is clean: exit 0 and the "clean" banner.
fn assert_clean(root: &PathBuf) {
    let out = lint(root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "expected clean; stdout:\n{stdout}"
    );
    assert!(stdout.contains("liquid-lint: clean"), "stdout:\n{stdout}");
}

#[test]
fn panic_reachability_fires_on_fault_crate_and_spares_tests() {
    let hit = fixture(
        "panic-reach-hit",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn read(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
    );
    assert_hit(&hit, "panic-reachability");

    // Same call, but inside a #[test] — masked.
    let clean = fixture(
        "panic-reach-clean",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn read(v: Option<u32>) -> Option<u32> {\n    v\n}\n\
             #[test]\nfn t() {\n    read(Some(1)).unwrap();\n}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn panic_reachability_proves_through_the_call_graph() {
    // The panic is in a *private* helper; the finding must name the
    // public entry point that reaches it.
    let hit = fixture(
        "panic-reach-chain",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn entry(v: Option<u32>) -> u32 {\n    helper(v)\n}\n\
             fn helper(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[panic-reachability]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("kv::entry"),
        "finding must carry the call chain from the public API; stdout:\n{stdout}"
    );

    // A private helper nothing public reaches is not reported.
    let clean = fixture(
        "panic-reach-dead",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn entry() -> u32 {\n    7\n}\n\
             #[cfg(test)]\nmod tests {\n\
             \x20   fn helper(v: Option<u32>) -> u32 {\n        v.unwrap()\n    }\n\
             \x20   #[test]\n    fn t() {\n        helper(Some(1));\n    }\n\
             }\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn panic_reachability_flags_unguarded_indexing_but_not_guarded() {
    let hit = fixture(
        "index-hit",
        &[(
            "crates/log/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn head(v: &[u32]) -> u32 {\n    v[0]\n}\n",
        )],
    );
    assert_hit(&hit, "panic-reachability");

    // A dominating bounds observation on the same receiver is proof.
    let clean = fixture(
        "index-clean",
        &[(
            "crates/log/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn head(v: &[u32]) -> u32 {\n\
             \x20   if v.is_empty() {\n        return 0;\n    }\n\
             \x20   v[0]\n}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn panic_reachability_honors_allow_directive() {
    let clean = fixture(
        "panic-reach-allow",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn read(v: Option<u32>) -> u32 {\n\
             \x20   // lint:allow(panic-reachability, reason=fixture invariant)\n\
             \x20   v.unwrap()\n}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn dropped_result_lint_fires_on_discarded_workspace_result() {
    // `log_op` provably returns Result everywhere in the (fixture)
    // workspace, so discarding it is a swallowed error.
    let hit = fixture(
        "dropped-hit",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn log_op() -> Result<u32, String> {\n    Ok(1)\n}\n\
             pub fn caller() {\n    log_op();\n}\n",
        )],
    );
    assert_hit(&hit, "dropped-result");

    // Propagating with `?` (or binding the value) is the fix.
    let clean = fixture(
        "dropped-clean",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn log_op() -> Result<u32, String> {\n    Ok(1)\n}\n\
             pub fn caller() -> Result<u32, String> {\n    let v = log_op()?;\n    Ok(v)\n}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn unchecked_offset_arithmetic_fires_in_fault_crates_only() {
    let hit = fixture(
        "offset-arith-hit",
        &[(
            "crates/log/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn advance(offset: u64) -> u64 {\n    offset + 1\n}\n",
        )],
    );
    assert_hit(&hit, "unchecked-offset-arithmetic");

    // checked_add is the prescribed fix.
    let checked = fixture(
        "offset-arith-checked",
        &[(
            "crates/log/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn advance(offset: u64) -> Option<u64> {\n    offset.checked_add(1)\n}\n",
        )],
    );
    assert_clean(&checked);

    // The same raw arithmetic outside a fault crate is not in scope.
    let helper_crate = fixture(
        "offset-arith-helper",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn advance(offset: u64) -> u64 {\n    offset + 1\n}\n",
        )],
    );
    assert_clean(&helper_crate);
}

#[test]
fn unchecked_offset_arithmetic_follows_assignment_taint() {
    // `x` is not offset-named, but it was assigned from one.
    let hit = fixture(
        "offset-taint",
        &[(
            "crates/messaging/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f(high_watermark: u64) -> u64 {\n\
             \x20   let x = high_watermark;\n\
             \x20   x * 2\n}\n",
        )],
    );
    assert_hit(&hit, "unchecked-offset-arithmetic");
}

#[test]
fn panic_lint_fires_outside_fault_crates() {
    let hit = fixture(
        "panic-hit",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {\n    panic!(\"boom\");\n}\n",
        )],
    );
    assert_hit(&hit, "panic");

    let clean = fixture(
        "panic-clean",
        &[(
            "crates/core/src/lib.rs",
            // .unwrap() is tolerated outside the fault crates; the
            // panic family is not.
            "#![forbid(unsafe_code)]\npub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn lock_order_lint_fires_on_rank_inversion() {
    // cluster.rs re-acquires its own ranked lock while the first guard
    // is still live — equal order is not strictly descending.
    let hit = fixture(
        "lock-order-hit",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L) {\n\
                 \x20   let a = state.lock();\n\
                 \x20   let b = state.lock();\n\
                 }\n",
            ),
        ],
    );
    assert_hit(&hit, "lock-order");

    // Dropping the first guard before re-acquiring is fine.
    let clean = fixture(
        "lock-order-clean",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L) {\n\
                 \x20   let a = state.lock();\n\
                 \x20   drop(a);\n\
                 \x20   let b = state.lock();\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn lock_order_lint_reports_rank_table_drift() {
    // A RANKS table missing a name that LOCK_FIELDS maps to is drift:
    // the static and runtime checkers would silently disagree.
    let hit = fixture(
        "lock-drift-hit",
        &[(
            "crates/sim/src/lockdep.rs",
            "pub const RANKS: &[(&str, u32)] = &[(\"cluster.state\", 40)];\n",
        )],
    );
    assert_hit(&hit, "lock-order");
}

#[test]
fn fault_site_lint_checks_registry_both_ways() {
    // An unregistered tick() string AND a registered site nobody calls.
    let hit = fixture(
        "fault-site-hit",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I) {\n    injector.tick(\"log.bogus\");\n}\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("\"log.bogus\" is not registered"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("\"log.append\" has no injector.tick"),
        "stdout:\n{stdout}"
    );

    // Call the registered site and both directions are satisfied.
    let clean = fixture(
        "fault-site-clean",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I) {\n    injector.tick(\"log.append\");\n}\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn fault_site_lint_rejects_non_literal_sites() {
    let hit = fixture(
        "fault-site-dynamic",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I, site: &str) {\n\
                 \x20   injector.tick(\"log.append\");\n\
                 \x20   injector.tick(site);\n}\n",
            ),
        ],
    );
    assert_hit(&hit, "fault-site");
}

#[test]
fn obs_instrument_lint_requires_twin_metrics_for_tick_sites() {
    // The obs crate is present, a lib-code tick site exists, but no
    // instrument is registered under the site's name.
    let obs_registry = "pub struct Registry;\n";
    let hit = fixture(
        "obs-instrument-hit",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            ("crates/obs/src/lib.rs", LIB_HEADER),
            ("crates/obs/src/registry.rs", obs_registry),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I) {\n    injector.tick(\"log.append\");\n}\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("[obs-instrument]") && stdout.contains("no twin obs instrument"),
        "stdout:\n{stdout}"
    );
    // The finding is attributed to the tick call site, not the registry.
    assert!(
        stdout.contains("crates/log/src/lib.rs:3"),
        "stdout:\n{stdout}"
    );

    // Registering a same-named counter anywhere in the tree satisfies it.
    let clean = fixture(
        "obs-instrument-clean",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            ("crates/obs/src/lib.rs", LIB_HEADER),
            ("crates/obs/src/registry.rs", obs_registry),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I, reg: &R) {\n\
                 \x20   let _c = reg.counter(\"log.append\");\n\
                 \x20   injector.tick(\"log.append\");\n}\n",
            ),
        ],
    );
    assert_clean(&clean);

    // Without the obs crate the check is skipped entirely (fixture
    // trees for the other lints stay minimal).
    let skipped = fixture(
        "obs-instrument-skipped",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I) {\n    injector.tick(\"log.append\");\n}\n",
            ),
        ],
    );
    assert_clean(&skipped);
}

#[test]
fn obs_instrument_lint_ignores_test_only_tick_sites() {
    // A tick that only happens inside #[test] code needs no twin.
    let clean = fixture(
        "obs-instrument-test-tick",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            ("crates/obs/src/lib.rs", LIB_HEADER),
            ("crates/obs/src/registry.rs", "pub struct Registry;\n"),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 #[test]\nfn t() {\n    let injector = I;\n    injector.tick(\"log.append\");\n}\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn raw_io_lint_confines_fs_to_storage_layer() {
    let hit = fixture(
        "raw-io-hit",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f() {\n    let _ = std::fs::read(\"x\");\n}\n",
        )],
    );
    assert_hit(&hit, "raw-io");

    // The same call in an allowed storage file passes.
    let clean = fixture(
        "raw-io-clean",
        &[
            ("crates/kv/src/lib.rs", LIB_HEADER),
            (
                "crates/kv/src/wal.rs",
                "pub fn f() {\n    let _ = std::fs::read(\"x\");\n}\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn forbid_unsafe_lint_requires_attribute_and_bans_token() {
    let missing_attr = fixture(
        "unsafe-missing-attr",
        &[("crates/core/src/lib.rs", "pub fn f() {}\n")],
    );
    assert_hit(&missing_attr, "forbid-unsafe");

    let unsafe_token = fixture(
        "unsafe-token",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n",
        )],
    );
    assert_hit(&unsafe_token, "forbid-unsafe");

    let clean = fixture(
        "unsafe-clean",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn lint_allow_lint_rejects_unused_and_unknown_directives() {
    let unused = fixture(
        "allow-unused",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // lint:allow(panic, reason=suppresses nothing)\n\
             pub fn f() {}\n",
        )],
    );
    assert_hit(&unused, "lint-allow");

    let unknown = fixture(
        "allow-unknown",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f() {\n\
             \x20   // lint:allow(speling, reason=no such lint)\n\
             \x20   panic!(\"x\");\n}\n",
        )],
    );
    assert_hit(&unknown, "lint-allow");
}

#[test]
fn raw_thread_lint_confines_spawns_to_sim() {
    let hit = fixture(
        "raw-thread-hit",
        &[(
            "crates/processing/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
        )],
    );
    assert_hit(&hit, "raw-thread");

    // `use std::thread;` then a bare `thread::spawn` is the same escape.
    let bare = fixture(
        "raw-thread-bare",
        &[(
            "crates/processing/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             use std::thread;\n\
             pub fn f() {\n    thread::spawn(|| {});\n}\n",
        )],
    );
    assert_hit(&bare, "raw-thread");

    let parking = fixture(
        "raw-thread-parking-lot",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             use parking_lot::Mutex;\n\
             pub struct S(Mutex<u32>);\n",
        )],
    );
    assert_hit(&parking, "raw-thread");

    // The schedulable wrappers are the sanctioned path, tests are
    // masked, and crates/sim itself implements the raw spawning.
    let clean = fixture(
        "raw-thread-clean",
        &[
            (
                "crates/processing/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f() {\n    liquid_sim::thread::spawn(|| {});\n}\n\
                 #[test]\nfn t() {\n    std::thread::spawn(|| {}).join().ok();\n}\n",
            ),
            (
                "crates/sim/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn guard_liveness_lint_flags_dead_guards_under_ticks() {
    let hit = fixture(
        "guard-live-hit",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L, injector: &I) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 }\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[guard-liveness]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("holding ranked lock \"cluster.state\""),
        "finding must name the held lock; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("whose guard `st` is never used afterwards"),
        "finding must prove the guard dead; stdout:\n{stdout}"
    );

    // Releasing the guard before the fallible operation is the fix.
    let dropped = fixture(
        "guard-live-dropped",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L, injector: &I) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   drop(st);\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&dropped);

    // A guard that is still read after the tick marks a deliberate
    // critical section — the liveness analysis spares it. This is the
    // precision the old token-level held-io rule lacked.
    let live = fixture(
        "guard-live-critical-section",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L, injector: &I) {\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 \x20   st.touch();\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&live);

    // Raw I/O under a dead guard is the same hazard as a tick.
    let io_hit = fixture(
        "guard-live-raw-io",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/coord/src/tree.rs",
                "pub fn f(state: &L) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   let _ = std::fs::read(\"x\");\n\
                 }\n",
            ),
        ],
    );
    assert_hit(&io_hit, "guard-liveness");
}

#[test]
fn json_output_reports_findings_and_keeps_deny_exit_codes() {
    let hit = fixture(
        "json-hit",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/core/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {\n    panic!(\"boom\");\n}\n",
            ),
            (
                // A lock-order inversion so one message contains quotes
                // the JSON encoder must escape.
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L) {\n\
                 \x20   let a = state.lock();\n\
                 \x20   let b = state.lock();\n\
                 }\n",
            ),
        ],
    );
    let json = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_liquid-lint"));
        cmd.args(["--json", "--root"]).arg(&hit).args(extra);
        cmd.output().unwrap()
    };

    let out = json(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "--json alone stays exit 0");
    assert!(
        stdout.trim_start().starts_with("{\"findings\":["),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"lint\":\"panic\""), "stdout:\n{stdout}");
    assert!(
        stdout.contains("\"file\":\"crates/core/src/lib.rs\""),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"line\":3"), "stdout:\n{stdout}");
    assert!(stdout.contains("\"count\":2"), "stdout:\n{stdout}");
    // The analysis-report paths ride the JSON output so CI consumes
    // them instead of hard-coding.
    assert!(
        stdout.contains("\"reports\":[\"target/analysis/lock-cost.json\",\"target/analysis/shardability.json\",\"target/analysis/atomicity.json\"]"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("\\\"cluster.state\\\""),
        "quotes inside messages must be escaped; stdout:\n{stdout}"
    );

    // --deny semantics are unchanged under --json.
    assert_eq!(json(&["--deny"]).status.code(), Some(1));

    let clean = fixture("json-clean", &[("crates/core/src/lib.rs", LIB_HEADER)]);
    let out = Command::new(env!("CARGO_BIN_EXE_liquid-lint"))
        .args(["--json", "--deny", "--root"])
        .arg(&clean)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "{\"findings\":[],\"count\":0,\"reports\":[\"target/analysis/lock-cost.json\",\
         \"target/analysis/shardability.json\",\"target/analysis/atomicity.json\"]}"
    );
}

#[test]
fn sarif_output_is_valid_2_1_0_and_keeps_deny_exit_codes() {
    let hit = fixture(
        "sarif-hit",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {\n    panic!(\"boom\");\n}\n",
        )],
    );
    let sarif = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_liquid-lint"));
        cmd.args(["--sarif", "--root"]).arg(&hit).args(extra);
        cmd.output().unwrap()
    };

    let out = sarif(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "--sarif alone stays exit 0");
    // The envelope GitHub code scanning requires.
    assert!(
        stdout.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("\"version\":\"2.1.0\""),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("\"name\":\"liquid-lint\""),
        "tool.driver.name; stdout:\n{stdout}"
    );
    // Every lint is declared as a rule, findings or not.
    assert!(
        stdout.contains("\"id\":\"panic-reachability\""),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("\"id\":\"guard-liveness\""),
        "stdout:\n{stdout}"
    );
    // The finding itself: ruleId + message.text + physical location.
    assert!(stdout.contains("\"ruleId\":\"panic\""), "stdout:\n{stdout}");
    assert!(stdout.contains("\"level\":\"error\""), "stdout:\n{stdout}");
    assert!(
        stdout.contains("\"uri\":\"crates/core/src/lib.rs\""),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"startLine\":3"), "stdout:\n{stdout}");

    // --deny semantics are identical under --sarif.
    assert_eq!(sarif(&["--deny"]).status.code(), Some(1));

    // --json and --sarif are mutually exclusive: usage error.
    assert_eq!(sarif(&["--json"]).status.code(), Some(2));

    // A clean tree still emits a full (empty-results) SARIF document.
    let clean = fixture("sarif-clean", &[("crates/core/src/lib.rs", LIB_HEADER)]);
    let out = Command::new(env!("CARGO_BIN_EXE_liquid-lint"))
        .args(["--sarif", "--deny", "--root"])
        .arg(&clean)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout.contains("\"results\":[]"), "stdout:\n{stdout}");
}

#[test]
fn only_flag_filters_findings_by_path_prefix() {
    // One finding per crate; --only keeps just the selected crate's.
    let root = fixture(
        "only-filter",
        &[
            (
                "crates/core/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {\n    panic!(\"boom\");\n}\n",
            ),
            (
                "crates/kv/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn g(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
            ),
        ],
    );
    let run = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_liquid-lint"));
        cmd.args(["--deny", "--root"]).arg(&root).args(extra);
        cmd.output().unwrap()
    };

    let all = run(&[]);
    let stdout = String::from_utf8_lossy(&all.stdout);
    assert!(
        stdout.contains("crates/core/src/lib.rs"),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("crates/kv/src/lib.rs"), "stdout:\n{stdout}");

    let core_only = run(&["--only", "crates/core"]);
    let stdout = String::from_utf8_lossy(&core_only.stdout);
    assert_eq!(core_only.status.code(), Some(1));
    assert!(
        stdout.contains("crates/core/src/lib.rs"),
        "stdout:\n{stdout}"
    );
    assert!(
        !stdout.contains("crates/kv/src/lib.rs"),
        "--only must drop other crates' findings; stdout:\n{stdout}"
    );

    // Filtering away every finding satisfies --deny.
    let none = run(&["--only", "crates/messaging"]);
    assert_eq!(none.status.code(), Some(0));
}

#[test]
fn emit_callgraph_dumps_dot() {
    let root = fixture(
        "callgraph-dot",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn entry() -> u32 {\n    helper()\n}\n\
             fn helper() -> u32 {\n    7\n}\n",
        )],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_liquid-lint"))
        .args(["--emit-callgraph", "--root"])
        .arg(&root)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(
        stdout.starts_with("digraph liquid_callgraph {"),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("core::entry"), "stdout:\n{stdout}");
    assert!(stdout.contains("core::helper"), "stdout:\n{stdout}");
    assert!(
        stdout.contains(" -> "),
        "the entry→helper edge must be present; stdout:\n{stdout}"
    );
}

#[test]
fn hot_copy_lint_fires_on_payload_copy_in_hot_callee() {
    // The seeded regression: the copy is NOT in the hot root itself but
    // in a callee whose parameter is not payload-named — only the
    // interprocedural parameter-taint fixpoint can connect
    // `batch.records()` at the call site to `buf.to_vec()` in the
    // callee.
    let hit = fixture(
        "hot-copy-hit",
        &[(
            "crates/messaging/src/cluster.rs",
            "pub fn produce_batch(batch: &B) -> Vec<u8> {\n\
             \x20   stage(batch.records())\n\
             }\n\
             fn stage(buf: &[u8]) -> Vec<u8> {\n\
             \x20   buf.to_vec()\n\
             }\n",
        )],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[hot-copy]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("`.to_vec()` deep-copies payload bytes"),
        "stdout:\n{stdout}"
    );

    // The witness must spell out the root→copy chain with a file:line
    // per hop.
    assert!(
        stdout.contains(
            "reached via: messaging::produce_batch (crates/messaging/src/cluster.rs:1) \
             → messaging::stage (crates/messaging/src/cluster.rs:4)"
        ),
        "finding must carry the full call-chain witness; stdout:\n{stdout}"
    );

    // Sharing the buffer instead of copying is the fix.
    let clean = fixture(
        "hot-copy-clean",
        &[(
            "crates/messaging/src/cluster.rs",
            "pub fn produce_batch(batch: &B) -> B {\n\
             \x20   stage(batch.records())\n\
             }\n\
             fn stage(buf: &B) -> B {\n\
             \x20   buf.slice()\n\
             }\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn hot_copy_lint_spares_cold_paths_and_clones() {
    // The same deep copy in a function the hot roots never reach is
    // out of scope — compaction may copy all it wants.
    let cold = fixture(
        "hot-copy-cold",
        &[(
            "crates/log/src/compaction.rs",
            "pub fn produce_batch(batch: &B) -> u64 {\n\
             \x20   batch.len()\n\
             }\n\
             pub fn compact(records: &[u8]) -> Vec<u8> {\n\
             \x20   records.to_vec()\n\
             }\n",
        )],
    );
    assert_clean(&cold);

    // `.clone()` on a payload carrier is a Bytes refcount bump — the
    // sanctioned share, never a finding.
    let cloned = fixture(
        "hot-copy-clone",
        &[(
            "crates/messaging/src/cluster.rs",
            "pub fn produce_batch(batch: &B) -> B {\n\
             \x20   batch.clone()\n\
             }\n",
        )],
    );
    assert_clean(&cloned);
}

#[test]
fn hot_copy_lint_honors_allow_and_reports_unused_or_malformed() {
    // A used directive with a reason suppresses the finding.
    let allowed = fixture(
        "hot-copy-allow",
        &[(
            "crates/messaging/src/cluster.rs",
            "pub fn produce_batch(batch: &B) -> Vec<u8> {\n\
             \x20   // lint:allow(hot-copy, reason=wire serialization owns this copy)\n\
             \x20   batch.to_vec()\n\
             }\n",
        )],
    );
    assert_clean(&allowed);

    // A directive that suppresses nothing is itself a finding.
    let unused = fixture(
        "hot-copy-allow-unused",
        &[(
            "crates/messaging/src/cluster.rs",
            "pub fn produce_batch(batch: &B) -> B {\n\
             \x20   // lint:allow(hot-copy, reason=suppresses nothing)\n\
             \x20   batch.share()\n\
             }\n",
        )],
    );
    assert_hit(&unused, "lint-allow");

    // A directive without a reason is malformed.
    let malformed = fixture(
        "hot-copy-allow-malformed",
        &[(
            "crates/messaging/src/cluster.rs",
            "pub fn produce_batch(batch: &B) -> Vec<u8> {\n\
             \x20   // lint:allow(hot-copy)\n\
             \x20   batch.to_vec()\n\
             }\n",
        )],
    );
    assert_hit(&malformed, "lint-allow");
}

#[test]
fn lock_cost_lint_fires_on_io_under_hot_guard() {
    // produce_batch (a hot root) ticks an injectable fault site while
    // the ranked cluster.state guard is live. The guard is read
    // afterwards, so guard-liveness stays quiet — this is exactly the
    // deliberate-critical-section shape only lock-cost can price.
    let hit = fixture(
        "lock-cost-hit",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L, injector: &I) {\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 \x20   st.touch();\n\
                 }\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[lock-cost]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("critical section of \"cluster.state\""),
        "finding must name the ranked guard; stdout:\n{stdout}"
    );

    // Dropping the guard before the fallible operation is the fix.
    let clean = fixture(
        "lock-cost-clean",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L, injector: &I) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   drop(st);\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&clean);

    // The same section in a function the hot roots never reach is
    // priced in the report but not a lint finding.
    let cold = fixture(
        "lock-cost-cold",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L) -> u64 {\n\
                 \x20   let st = state.lock();\n\
                 \x20   st.len()\n\
                 }\n\
                 pub fn maintenance(state: &L, injector: &I) {\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 \x20   st.touch();\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&cold);
}

#[test]
fn lock_cost_lint_fires_interprocedurally_and_honors_allow() {
    // The I/O happens in a callee — the guard's cost must include the
    // callee's summary, not just the ops textually under the lock.
    let hit = fixture(
        "lock-cost-callee",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L, injector: &I) {\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   append(injector);\n\
                 \x20   st.touch();\n\
                 }\n\
                 fn append(injector: &I) {\n\
                 \x20   injector.tick(\"log.append\");\n\
                 }\n",
            ),
        ],
    );
    assert_hit(&hit, "lock-cost");

    // A reasoned allow on the acquisition suppresses it.
    let allowed = fixture(
        "lock-cost-allowed",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L, injector: &I) {\n\
                 \x20   // lint:allow(lock-cost, reason=crash atomicity requires append under the guard)\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 \x20   st.touch();\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&allowed);
}

#[test]
fn lock_cost_report_is_written_with_schema_and_ranking() {
    let root = fixture(
        "lock-cost-report",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn fetch_batch(state: &L) -> u64 {\n\
                 \x20   let st = state.lock();\n\
                 \x20   st.len()\n\
                 }\n",
            ),
        ],
    );
    let out = lint(&root);
    assert_eq!(out.status.code(), Some(0));
    let report = fs::read_to_string(root.join("target/analysis/lock-cost.json")).unwrap();
    assert!(
        report.starts_with("{\"schema\":\"lock-cost/v1\""),
        "report:\n{report}"
    );
    assert!(
        report.contains("\"rank\":\"cluster.state\""),
        "report:\n{report}"
    );
    assert!(report.contains("\"order\":40"), "report:\n{report}");
    assert!(
        report.contains("\"function\":\"messaging::fetch_batch\""),
        "report:\n{report}"
    );
    assert!(report.contains("\"hot\":true"), "report:\n{report}");
    assert!(report.contains("\"ranks\":["), "report:\n{report}");
}

#[test]
fn shard_lint_fires_on_partition_local_hot_guard_with_witness() {
    // A hot root holds the coarse cluster.state lock exclusively, but
    // every guarded access is keyed by the TopicPartition — the
    // analyzer must prove the section partition-local and flag the
    // guard as shardable-but-coarse.
    let hit = fixture(
        "shard-local-hit",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L, tp: &TopicPartition) -> u64 {\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   st.append(tp)\n\
                 }\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[shard]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("critical section of \"cluster.state\""),
        "finding must name the guard; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("partition-local state (keyed by `tp`)"),
        "finding must carry the key evidence; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("per-partition shards"),
        "finding must prescribe the split; stdout:\n{stdout}"
    );

    // The report carries the witness: kind, access, and a
    // `qualified (file:line)` chain hop for the guard function.
    let report = fs::read_to_string(hit.join("target/analysis/shardability.json")).unwrap();
    assert!(
        report.starts_with("{\"schema\":\"shardability/v1\""),
        "report:\n{report}"
    );
    assert!(
        report.contains("\"verdict\":\"partition-local\""),
        "report:\n{report}"
    );
    assert!(
        report.contains("\"kind\":\"partition-key\""),
        "report:\n{report}"
    );
    assert!(
        report.contains("\"chain\":\"messaging::produce_batch (crates/messaging/src/cluster.rs:"),
        "witness chains must be qualified-name (file:line) hops; report:\n{report}"
    );
}

#[test]
fn shard_lint_classifies_cross_partition_access_through_callees() {
    // The guard section reaches the topic map without a partition key
    // — and does it inside a callee, so the cross evidence must ride
    // the call graph back to the guard with a multi-hop witness chain.
    let root = fixture(
        "shard-cross",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L) -> u64 {\n\
                 \x20   let st = state.lock();\n\
                 \x20   scan(&st)\n\
                 }\n\
                 fn scan(st: &S) -> u64 {\n\
                 \x20   st.topics.iter().count()\n\
                 }\n",
            ),
        ],
    );
    // Cross-partition guards are not shardable: no finding.
    assert_clean(&root);
    let report = fs::read_to_string(root.join("target/analysis/shardability.json")).unwrap();
    assert!(
        report.contains("\"verdict\":\"cross-partition\""),
        "report:\n{report}"
    );
    assert!(
        report.contains("\"kind\":\"cross-collection\""),
        "report:\n{report}"
    );
    assert!(
        report.contains(" \u{2192} messaging::scan (crates/messaging/src/cluster.rs:"),
        "the witness chain must walk into the callee; report:\n{report}"
    );
}

#[test]
fn shard_lint_is_conservative_on_unknown_keys() {
    // The guarded access is neither provably keyed nor a known
    // cross-partition collection: the verdict must stay `unknown` and
    // the lint must NOT prescribe a split it cannot prove safe.
    let root = fixture(
        "shard-unknown",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L) -> u64 {\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   st.bump()\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&root);
    let report = fs::read_to_string(root.join("target/analysis/shardability.json")).unwrap();
    assert!(
        report.contains("\"verdict\":\"unknown\""),
        "report:\n{report}"
    );
}

#[test]
fn shard_lint_honors_allow_directive() {
    let allowed = fixture(
        "shard-allowed",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L, tp: &TopicPartition) -> u64 {\n\
                 \x20   // lint:allow(shard, reason=the append and the watermark update must stay one atomic section until the split lands)\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   st.append(tp)\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&allowed);
}

#[test]
fn only_flag_accepts_lint_names_and_rejects_unknown() {
    // Same tree as the partition-local hit: one [shard] finding, no
    // [lock-cost] findings.
    let root = fixture(
        "only-lint-name",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce_batch(state: &L, tp: &TopicPartition) -> u64 {\n\
                 \x20   let mut st = state.lock();\n\
                 \x20   st.append(tp)\n\
                 }\n",
            ),
        ],
    );
    let run = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_liquid-lint"));
        cmd.args(["--deny", "--root"]).arg(&root).args(extra);
        cmd.output().unwrap()
    };

    let shard_only = run(&["--only", "shard"]);
    let stdout = String::from_utf8_lossy(&shard_only.stdout);
    assert_eq!(shard_only.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[shard]"), "stdout:\n{stdout}");

    // A known lint with no findings in this tree filters to clean.
    let lock_cost_only = run(&["--only", "lock-cost"]);
    assert_eq!(lock_cost_only.status.code(), Some(0));

    // An unknown bare name is a usage error (exit 2), not a silent
    // empty filter that would green-light a typo in CI.
    let bogus = run(&["--only", "shardd"]);
    assert_eq!(bogus.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&bogus.stderr);
    assert!(
        stderr.contains("neither a path prefix nor a known lint"),
        "stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("shard"),
        "the error must list known lints; stderr:\n{stderr}"
    );
}

#[test]
fn atomicity_lint_validates_reacquire_gaps() {
    // The canonical split shape: resolve a shard handle under the
    // metadata guard, drop it, lock the shard. The carried `Arc` *is*
    // the revalidation — machine-validated, no finding.
    let clean = fixture(
        "atomicity-reacquire",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce(state: &L) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   let shard = st.resolve();\n\
                 \x20   drop(st);\n\
                 \x20   let mut ps = shard.part.lock();\n\
                 \x20   ps.touch();\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn atomicity_lint_fires_on_stale_use_across_drop() {
    // A snapshot taken under the dropped guard is consulted as state
    // inside the next critical section — the TOCTOU shape the pass
    // exists for.
    let hit = fixture(
        "atomicity-stale",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce(state: &L, shard: &S) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   let snap = st.snapshot();\n\
                 \x20   drop(st);\n\
                 \x20   let mut ps = shard.part.lock();\n\
                 \x20   snap.probe();\n\
                 \x20   ps.touch();\n\
                 }\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[atomicity]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("derived under \"cluster.state\""),
        "finding must name the source rank; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("\"partition.state\" section"),
        "finding must name the live section; stdout:\n{stdout}"
    );
}

#[test]
fn atomicity_lint_witnesses_interprocedural_consults() {
    // The consult happens inside a helper the stale value is passed
    // to — the witness chain must ride the call graph into the callee.
    let hit = fixture(
        "atomicity-interproc",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce(state: &L, shard: &S) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   let snap = st.snapshot();\n\
                 \x20   drop(st);\n\
                 \x20   let mut ps = shard.part.lock();\n\
                 \x20   consult(snap);\n\
                 \x20   ps.touch();\n\
                 }\n\
                 fn consult(snap: &M) -> usize {\n\
                 \x20   snap.len()\n\
                 }\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[atomicity]"), "stdout:\n{stdout}");
    // Witness-chain format: read → drop → use hop(s), file:line each,
    // ending in the callee that performs the consult.
    assert!(
        stdout.contains(
            "read crates/messaging/src/cluster.rs:3 \u{2192} \
             drop crates/messaging/src/cluster.rs:4 \u{2192} \
             messaging::produce (crates/messaging/src/cluster.rs:6) \u{2192} \
             messaging::consult (crates/messaging/src/cluster.rs:9)"
        ),
        "witness chain must carry file:line per hop; stdout:\n{stdout}"
    );
}

#[test]
fn atomicity_lint_detects_scope_end_drops() {
    // No explicit drop: the guard dies at the end of its block, and
    // the witness renders the drop hop as "scope end".
    let hit = fixture(
        "atomicity-scope-end",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce(state: &L, shard: &S) {\n\
                 \x20   let mut snap = M::empty();\n\
                 \x20   {\n\
                 \x20       let st = state.lock();\n\
                 \x20       snap = st.snapshot();\n\
                 \x20       st.touch();\n\
                 \x20   }\n\
                 \x20   let mut ps = shard.part.lock();\n\
                 \x20   snap.probe();\n\
                 \x20   ps.touch();\n\
                 }\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[atomicity]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("scope end"),
        "implicit drops must render as scope end; stdout:\n{stdout}"
    );
}

#[test]
fn atomicity_lint_honors_allow_directive() {
    // A reasoned allow directly above the stale consult suppresses the
    // finding (and counts as used, so lint-allow stays quiet too).
    let allowed = fixture(
        "atomicity-allowed",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce(state: &L, shard: &S) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   let snap = st.snapshot();\n\
                 \x20   drop(st);\n\
                 \x20   let mut ps = shard.part.lock();\n\
                 \x20   // lint:allow(atomicity, reason=snap is a conservative liveness hint and the section revalidates authoritative state)\n\
                 \x20   snap.probe();\n\
                 \x20   ps.touch();\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&allowed);
}

#[test]
fn atomicity_lint_spares_carried_keys_and_cold_sections() {
    // A stale value in argument/key position next to the live guard is
    // the carried-key shape (fresh state keyed by the snapshot), and a
    // use with no ranked guard live is not a critical-section gap:
    // neither is a finding.
    let clean = fixture(
        "atomicity-carried",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn produce(state: &L, shard: &S) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   let snap = st.snapshot();\n\
                 \x20   drop(st);\n\
                 \x20   let mut ps = shard.part.lock();\n\
                 \x20   ps.apply(snap);\n\
                 \x20   drop(ps);\n\
                 \x20   snap.probe();\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn atomicity_census_of_real_tree_has_no_unknown_gaps() {
    // Whole-tree acceptance: every ranked guard carries a verdict, no
    // gap anywhere is unknown-classified, and the offsets split's
    // commit path is machine-validated (the resolved shard Arc is the
    // reacquire witness).
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let (_, reports) = liquid_lint::analyze_root_with_report(&root).unwrap();
    let guards = &reports.atomicity.guards;
    assert!(!guards.is_empty());
    assert!(
        guards
            .iter()
            .all(|g| g.verdict != liquid_lint::atomicity::Verdict::Unknown),
        "unknown-classified gaps on the real tree"
    );
    // The only stale-use verdicts are the two allowed broker-liveness
    // hints on the cluster.state produce paths.
    for g in guards {
        if g.verdict == liquid_lint::atomicity::Verdict::StaleUse {
            assert_eq!(g.rank, "cluster.state", "unexpected stale-use on {g:?}");
            assert!(
                !g.witness.is_empty(),
                "stale verdict without witness: {g:?}"
            );
        }
    }
    let commit = guards
        .iter()
        .find(|g| g.rank == "offsets.inner" && g.function.ends_with("OffsetManager::commit"))
        .expect("commit acquire site in the census");
    assert!(commit.gap, "commit path must have a detected gap");
    assert_eq!(
        commit.verdict,
        liquid_lint::atomicity::Verdict::Validated,
        "the commit snapshot\u{2192}commit gap must be proven validated"
    );
    assert!(
        commit.witness.iter().any(|w| w.kind == "reacquire"),
        "the shard-lock reacquire must be the witness: {:?}",
        commit.witness
    );
    // Every offsets.shard site is gap-free: slot sections consult only
    // fresh slot state.
    assert!(
        guards
            .iter()
            .filter(|g| g.rank == "offsets.shard")
            .all(|g| g.verdict == liquid_lint::atomicity::Verdict::Validated),
        "offsets.shard sections must be validated"
    );
}

#[test]
fn rank_tables_and_guard_inventory_agree() {
    // Five copies of the rank table must agree: the runtime table
    // (sim::lockdep::RANKS, parsed from source), the analyzer's
    // field→rank map (rules::LOCK_FIELDS), and the acquire-site
    // inventories of the lock-cost, shardability, and atomicity
    // reports built from the real tree.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();

    let src = fs::read_to_string(root.join("crates/sim/src/lockdep.rs")).unwrap();
    let table = src
        .split_once("pub const RANKS: &[(&str, u32)] = &[")
        .expect("RANKS table present")
        .1
        .split_once("];")
        .expect("RANKS table terminated")
        .0;
    let declared: std::collections::BTreeSet<&str> = table.split('"').skip(1).step_by(2).collect();
    assert!(!declared.is_empty());

    let mapped: std::collections::BTreeSet<&str> = liquid_lint::rules::LOCK_FIELDS
        .iter()
        .map(|&(_, _, rank)| rank)
        .collect();
    assert_eq!(
        declared, mapped,
        "sim::lockdep::RANKS and rules::LOCK_FIELDS drifted apart"
    );

    let (_, reports) = liquid_lint::analyze_root_with_report(&root).unwrap();
    let inventory = reports.lock_cost.inventory();
    // job.metrics is declared for sim's own lockdep tests and has no
    // production acquire site; every other rank must show up in the
    // guard inventory.
    let mut expected = declared.clone();
    expected.remove("job.metrics");
    assert_eq!(
        inventory, expected,
        "lock-cost guard inventory drifted from the declared ranks"
    );

    // Fourth copy: the shardability report must classify every rank
    // the lock-cost report scores — a lock added without a
    // shardability verdict is drift, not an oversight to wave through.
    assert_eq!(
        reports.shardability.inventory(),
        expected,
        "shardability guard inventory drifted from the declared ranks"
    );
    // And site-for-site: both passes replay the same acquire sites, so
    // their (rank, file, line) inventories must match exactly.
    assert_eq!(
        reports.shardability.sites(),
        reports.lock_cost.sites(),
        "shardability and lock-cost passes disagree on acquire sites"
    );

    // Fifth copy: the atomicity pass audits the same guards — every
    // rank gets a gap verdict, and its acquire sites are the exact
    // acquire sites the other passes replay.
    assert_eq!(
        reports.atomicity.inventory(),
        expected,
        "atomicity guard inventory drifted from the declared ranks"
    );
    assert_eq!(
        reports.atomicity.sites(),
        reports.lock_cost.sites(),
        "atomicity and lock-cost passes disagree on acquire sites"
    );
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance bar: `liquid-lint --deny` exits 0 on the actual
    // tree. CARGO_MANIFEST_DIR is crates/analyzer, so the workspace
    // root is two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    assert_clean(&root);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_liquid-lint"))
        .arg("--frobnicate")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
