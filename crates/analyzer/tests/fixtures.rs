//! End-to-end fixture tests: each lint gets a minimal workspace tree
//! that trips it (binary exits 1 under `--deny`) and a sibling tree
//! that is clean (exit 0). Trees are written to a per-test temp
//! directory and linted through the real `liquid-lint` binary, so the
//! CLI plumbing (arg parsing, root override, exit codes) is covered
//! too, not just the library.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

/// All fixture crate roots carry this so the forbid-unsafe lint stays
/// quiet in fixtures that target a different lint.
const LIB_HEADER: &str = "#![forbid(unsafe_code)]\n";

/// The real rank table, mirrored into lock-order fixtures so the
/// cross-tree drift check (every `LOCK_FIELDS` rank must be declared)
/// finds nothing to complain about.
const RANKS_RS: &str = r#"
pub const RANKS: &[(&str, u32)] = &[
    ("dfs.state", 96),
    ("dfs.stats", 94),
    ("stack.feeds", 80),
    ("stack.managed", 75),
    ("yarn.state", 70),
    ("consumer.state", 60),
    ("group.groups", 50),
    ("cluster.state", 40),
    ("offsets.inner", 30),
    ("quota.limits", 24),
    ("quota.usage", 23),
    ("quota.throttled", 21),
    ("coord.tree", 15),
    ("job.metrics", 10),
    ("log.pagecache", 5),
    ("acl.grants", 3),
];
"#;

/// Writes `files` (workspace-relative path, contents) under a fresh
/// temp root and returns the root.
fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("liquid-lint-fixture-{}-{name}", std::process::id()));
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    for (rel, contents) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }
    root
}

fn lint(root: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_liquid-lint"))
        .args(["--deny", "--root"])
        .arg(root)
        .output()
        .unwrap()
}

/// Asserts the tree trips the named lint: exit 1 and at least one
/// finding tagged `[lint]` in the output.
fn assert_hit(root: &PathBuf, lint_name: &str) {
    let out = lint(root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected findings under --deny; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("[{lint_name}]")),
        "expected a [{lint_name}] finding; stdout:\n{stdout}"
    );
}

/// Asserts the tree is clean: exit 0 and the "clean" banner.
fn assert_clean(root: &PathBuf) {
    let out = lint(root);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "expected clean; stdout:\n{stdout}"
    );
    assert!(stdout.contains("liquid-lint: clean"), "stdout:\n{stdout}");
}

#[test]
fn unwrap_lint_fires_on_fault_crate_and_spares_tests() {
    let hit = fixture(
        "unwrap-hit",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn read(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
    );
    assert_hit(&hit, "unwrap");

    // Same call, but inside a #[test] — masked.
    let clean = fixture(
        "unwrap-clean",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn read(v: Option<u32>) -> Option<u32> {\n    v\n}\n\
             #[test]\nfn t() {\n    read(Some(1)).unwrap();\n}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn unwrap_lint_honors_allow_directive() {
    let clean = fixture(
        "unwrap-allow",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn read(v: Option<u32>) -> u32 {\n\
             \x20   // lint:allow(unwrap, reason=fixture invariant)\n\
             \x20   v.unwrap()\n}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn panic_lint_fires_outside_fault_crates() {
    let hit = fixture(
        "panic-hit",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {\n    panic!(\"boom\");\n}\n",
        )],
    );
    assert_hit(&hit, "panic");

    let clean = fixture(
        "panic-clean",
        &[(
            "crates/core/src/lib.rs",
            // .unwrap() is tolerated outside the fault crates; the
            // panic family is not.
            "#![forbid(unsafe_code)]\npub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn lock_order_lint_fires_on_rank_inversion() {
    // cluster.rs re-acquires its own ranked lock while the first guard
    // is still live — equal order is not strictly descending.
    let hit = fixture(
        "lock-order-hit",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L) {\n\
                 \x20   let a = state.lock();\n\
                 \x20   let b = state.lock();\n\
                 }\n",
            ),
        ],
    );
    assert_hit(&hit, "lock-order");

    // Dropping the first guard before re-acquiring is fine.
    let clean = fixture(
        "lock-order-clean",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L) {\n\
                 \x20   let a = state.lock();\n\
                 \x20   drop(a);\n\
                 \x20   let b = state.lock();\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn lock_order_lint_reports_rank_table_drift() {
    // A RANKS table missing a name that LOCK_FIELDS maps to is drift:
    // the static and runtime checkers would silently disagree.
    let hit = fixture(
        "lock-drift-hit",
        &[(
            "crates/sim/src/lockdep.rs",
            "pub const RANKS: &[(&str, u32)] = &[(\"cluster.state\", 40)];\n",
        )],
    );
    assert_hit(&hit, "lock-order");
}

#[test]
fn fault_site_lint_checks_registry_both_ways() {
    // An unregistered tick() string AND a registered site nobody calls.
    let hit = fixture(
        "fault-site-hit",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I) {\n    injector.tick(\"log.bogus\");\n}\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("\"log.bogus\" is not registered"),
        "stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("\"log.append\" has no injector.tick"),
        "stdout:\n{stdout}"
    );

    // Call the registered site and both directions are satisfied.
    let clean = fixture(
        "fault-site-clean",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I) {\n    injector.tick(\"log.append\");\n}\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn fault_site_lint_rejects_non_literal_sites() {
    let hit = fixture(
        "fault-site-dynamic",
        &[
            (
                "crates/sim/src/failure.rs",
                "pub const SITES: &[&str] = &[\"log.append\"];\n",
            ),
            (
                "crates/log/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f(injector: &I, site: &str) {\n\
                 \x20   injector.tick(\"log.append\");\n\
                 \x20   injector.tick(site);\n}\n",
            ),
        ],
    );
    assert_hit(&hit, "fault-site");
}

#[test]
fn raw_io_lint_confines_fs_to_storage_layer() {
    let hit = fixture(
        "raw-io-hit",
        &[(
            "crates/kv/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f() {\n    let _ = std::fs::read(\"x\");\n}\n",
        )],
    );
    assert_hit(&hit, "raw-io");

    // The same call in an allowed storage file passes.
    let clean = fixture(
        "raw-io-clean",
        &[
            ("crates/kv/src/lib.rs", LIB_HEADER),
            (
                "crates/kv/src/wal.rs",
                "pub fn f() {\n    let _ = std::fs::read(\"x\");\n}\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn forbid_unsafe_lint_requires_attribute_and_bans_token() {
    let missing_attr = fixture(
        "unsafe-missing-attr",
        &[("crates/core/src/lib.rs", "pub fn f() {}\n")],
    );
    assert_hit(&missing_attr, "forbid-unsafe");

    let unsafe_token = fixture(
        "unsafe-token",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n",
        )],
    );
    assert_hit(&unsafe_token, "forbid-unsafe");

    let clean = fixture(
        "unsafe-clean",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        )],
    );
    assert_clean(&clean);
}

#[test]
fn lint_allow_lint_rejects_unused_and_unknown_directives() {
    let unused = fixture(
        "allow-unused",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // lint:allow(panic, reason=suppresses nothing)\n\
             pub fn f() {}\n",
        )],
    );
    assert_hit(&unused, "lint-allow");

    let unknown = fixture(
        "allow-unknown",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f() {\n\
             \x20   // lint:allow(speling, reason=no such lint)\n\
             \x20   panic!(\"x\");\n}\n",
        )],
    );
    assert_hit(&unknown, "lint-allow");
}

#[test]
fn raw_thread_lint_confines_spawns_to_sim() {
    let hit = fixture(
        "raw-thread-hit",
        &[(
            "crates/processing/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
        )],
    );
    assert_hit(&hit, "raw-thread");

    // `use std::thread;` then a bare `thread::spawn` is the same escape.
    let bare = fixture(
        "raw-thread-bare",
        &[(
            "crates/processing/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             use std::thread;\n\
             pub fn f() {\n    thread::spawn(|| {});\n}\n",
        )],
    );
    assert_hit(&bare, "raw-thread");

    let parking = fixture(
        "raw-thread-parking-lot",
        &[(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             use parking_lot::Mutex;\n\
             pub struct S(Mutex<u32>);\n",
        )],
    );
    assert_hit(&parking, "raw-thread");

    // The schedulable wrappers are the sanctioned path, tests are
    // masked, and crates/sim itself implements the raw spawning.
    let clean = fixture(
        "raw-thread-clean",
        &[
            (
                "crates/processing/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f() {\n    liquid_sim::thread::spawn(|| {});\n}\n\
                 #[test]\nfn t() {\n    std::thread::spawn(|| {}).join().ok();\n}\n",
            ),
            (
                "crates/sim/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn f() {\n    std::thread::spawn(|| {});\n}\n",
            ),
        ],
    );
    assert_clean(&clean);
}

#[test]
fn held_io_lint_flags_ticks_under_ranked_guards() {
    let hit = fixture(
        "held-io-hit",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L, injector: &I) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 }\n",
            ),
        ],
    );
    let out = lint(&hit);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[held-io]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("holding ranked lock \"cluster.state\""),
        "finding must name the held lock; stdout:\n{stdout}"
    );

    // Releasing the guard before the fallible operation is the fix.
    let clean = fixture(
        "held-io-clean",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L, injector: &I) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   drop(st);\n\
                 \x20   injector.tick(\"cluster.election\");\n\
                 }\n",
            ),
        ],
    );
    assert_clean(&clean);

    // Raw I/O under a guard is the same hazard as a tick.
    let io_hit = fixture(
        "held-io-raw-io",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/coord/src/tree.rs",
                "pub fn f(state: &L) {\n\
                 \x20   let st = state.lock();\n\
                 \x20   let _ = std::fs::read(\"x\");\n\
                 }\n",
            ),
        ],
    );
    assert_hit(&io_hit, "held-io");
}

#[test]
fn json_output_reports_findings_and_keeps_deny_exit_codes() {
    let hit = fixture(
        "json-hit",
        &[
            ("crates/sim/src/lockdep.rs", RANKS_RS),
            (
                "crates/core/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {\n    panic!(\"boom\");\n}\n",
            ),
            (
                // A lock-order inversion so one message contains quotes
                // the JSON encoder must escape.
                "crates/messaging/src/cluster.rs",
                "pub fn f(state: &L) {\n\
                 \x20   let a = state.lock();\n\
                 \x20   let b = state.lock();\n\
                 }\n",
            ),
        ],
    );
    let json = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_liquid-lint"));
        cmd.args(["--json", "--root"]).arg(&hit).args(extra);
        cmd.output().unwrap()
    };

    let out = json(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "--json alone stays exit 0");
    assert!(
        stdout.trim_start().starts_with("{\"findings\":["),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"lint\":\"panic\""), "stdout:\n{stdout}");
    assert!(
        stdout.contains("\"file\":\"crates/core/src/lib.rs\""),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"line\":3"), "stdout:\n{stdout}");
    assert!(stdout.contains("\"count\":2"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("\\\"cluster.state\\\""),
        "quotes inside messages must be escaped; stdout:\n{stdout}"
    );

    // --deny semantics are unchanged under --json.
    assert_eq!(json(&["--deny"]).status.code(), Some(1));

    let clean = fixture("json-clean", &[("crates/core/src/lib.rs", LIB_HEADER)]);
    let out = Command::new(env!("CARGO_BIN_EXE_liquid-lint"))
        .args(["--json", "--deny", "--root"])
        .arg(&clean)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "{\"findings\":[],\"count\":0}"
    );
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance bar: `liquid-lint --deny` exits 0 on the actual
    // tree. CARGO_MANIFEST_DIR is crates/analyzer, so the workspace
    // root is two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    assert_clean(&root);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_liquid-lint"))
        .arg("--frobnicate")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
