//! IR-layer tests: the recursive-descent parser over real constructs
//! and the shape of the lowered CFGs. The whole-workspace parse test
//! at the bottom is the acceptance bar — every `.rs` file under
//! `crates/*/src` must go through the full lexer → parser pipeline.

use liquid_lint::ast::{Expr, File, Fn, Item, Pat, Stmt};
use liquid_lint::{cfg, lexer, parse, workspace_files};
use std::fs;
use std::path::Path;

fn parse_src(src: &str) -> File {
    let lexed = lexer::lex(src);
    parse::parse_file(&lexed.tokens).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
}

/// The first function item in the file (descending into impls/mods).
fn first_fn(file: &File) -> &Fn {
    fn find(items: &[Item]) -> Option<&Fn> {
        for item in items {
            match item {
                Item::Fn(f) => return Some(f),
                Item::Impl { items, .. } | Item::Trait { items, .. } | Item::Mod { items, .. } => {
                    if let Some(f) = find(items) {
                        return Some(f);
                    }
                }
                _ => {}
            }
        }
        None
    }
    find(&file.items).expect("no fn in file")
}

/// The statements of the first function's body.
fn body_stmts(file: &File) -> &[Stmt] {
    &first_fn(file).body.as_ref().expect("fn has no body").stmts
}

/// The expression of the first `Stmt::Expr` in the first function.
fn first_expr(file: &File) -> &Expr {
    body_stmts(file)
        .iter()
        .find_map(|s| match s {
            Stmt::Expr { expr, .. } => Some(expr),
            _ => None,
        })
        .expect("no expression statement")
}

// ---------------------------------------------------------------------
// Parser round-trips: one construct per test, asserting the AST shape.
// ---------------------------------------------------------------------

#[test]
fn parses_fn_signature() {
    let file = parse_src("pub fn advance(offset: u64, by: u64) -> Option<u64> { None }\n");
    let f = first_fn(&file);
    assert!(f.is_pub);
    assert!(!f.has_self);
    assert_eq!(f.name, "advance");
    assert_eq!(f.params.len(), 2);
    assert_eq!(f.params[1].ty, "u64");
    assert!(f.ret.as_deref().unwrap_or("").contains("Option"));
}

#[test]
fn parses_let_else_with_tuple_struct_pattern() {
    let file = parse_src(
        "fn f(v: Option<u32>) -> u32 {\n\
         \x20   let Some(x) = v else { return 0; };\n\
         \x20   x\n}\n",
    );
    let Stmt::Let {
        pat,
        init,
        else_block,
        ..
    } = &body_stmts(&file)[0]
    else {
        panic!("expected let");
    };
    assert!(
        matches!(pat, Pat::TupleStruct { path, elems } if path.ends_with(&["Some".into()]) && elems.len() == 1)
    );
    assert!(init.is_some());
    assert!(else_block.is_some(), "let-else block must be captured");
}

#[test]
fn parses_if_else_if_chain() {
    let file = parse_src(
        "fn f(x: u32) -> u32 {\n\
         \x20   if x == 0 { 1 } else if x == 1 { 2 } else { 3 }\n}\n",
    );
    let Expr::If {
        pat, cond, else_, ..
    } = first_expr(&file)
    else {
        panic!("expected if");
    };
    assert!(pat.is_none());
    assert!(matches!(cond.as_ref(), Expr::Binary { op, .. } if op == "=="));
    // `else if` parses as a nested If, whose own else is a Block.
    let Some(else_) = else_ else {
        panic!("missing else")
    };
    let Expr::If { else_: inner, .. } = else_.as_ref() else {
        panic!("else-if must nest as If");
    };
    assert!(matches!(inner.as_deref(), Some(Expr::Block(_))));
}

#[test]
fn parses_if_let() {
    let file = parse_src("fn f(v: Option<u32>) {\n    if let Some(x) = v { drop(x); }\n}\n");
    let Expr::If { pat, .. } = first_expr(&file) else {
        panic!("expected if");
    };
    assert!(matches!(pat, Some(Pat::TupleStruct { .. })));
}

#[test]
fn parses_match_with_guards_and_or_patterns() {
    let file = parse_src(
        "fn f(x: u32) -> u32 {\n\
         \x20   match x {\n\
         \x20       0 | 1 => 10,\n\
         \x20       n if n > 5 => n,\n\
         \x20       _ => 0,\n\
         \x20   }\n}\n",
    );
    let Expr::Match {
        scrutinee, arms, ..
    } = first_expr(&file)
    else {
        panic!("expected match");
    };
    assert!(matches!(scrutinee.as_ref(), Expr::Path { .. }));
    assert_eq!(arms.len(), 3);
    assert!(matches!(&arms[0].pat, Pat::Or(ps) if ps.len() == 2));
    assert!(arms[1].guard.is_some(), "match guard must be captured");
    assert!(matches!(&arms[2].pat, Pat::Wild));
}

#[test]
fn parses_while_and_while_let() {
    let file = parse_src(
        "fn f(mut it: I) {\n\
         \x20   while running() { step(); }\n\
         \x20   while let Some(x) = it.next() { drop(x); }\n}\n",
    );
    let stmts = body_stmts(&file);
    assert!(
        matches!(
            &stmts[0],
            Stmt::Expr {
                expr: Expr::While { pat: None, .. },
                ..
            }
        ),
        "plain while"
    );
    assert!(
        matches!(
            &stmts[1],
            Stmt::Expr {
                expr: Expr::While { pat: Some(_), .. },
                ..
            }
        ),
        "while let"
    );
}

#[test]
fn parses_for_loop() {
    let file = parse_src(
        "fn f(v: Vec<u32>) {\n    for (i, x) in v.iter().enumerate() { use_(i, x); }\n}\n",
    );
    let Expr::For {
        pat, iter, body, ..
    } = first_expr(&file)
    else {
        panic!("expected for");
    };
    assert!(matches!(pat, Pat::Tuple(ps) if ps.len() == 2));
    assert!(matches!(iter.as_ref(), Expr::MethodCall { method, .. } if method == "enumerate"));
    assert_eq!(body.stmts.len(), 1);
}

#[test]
fn parses_loop_with_break_value() {
    let file = parse_src("fn f() -> u32 {\n    loop {\n        break 7;\n    }\n}\n");
    let Expr::Loop { body, .. } = first_expr(&file) else {
        panic!("expected loop");
    };
    assert!(matches!(
        &body.stmts[0],
        Stmt::Expr {
            expr: Expr::Break { value: Some(_), .. },
            ..
        }
    ));
}

#[test]
fn parses_closures() {
    let file = parse_src(
        "fn f(v: Vec<u32>) -> Vec<u32> {\n\
         \x20   v.iter().map(|x| x + 1).filter(move |x| *x > 2).collect()\n}\n",
    );
    let mut closures = 0;
    liquid_lint::ast::walk_expr(first_expr(&file), &mut |e| {
        if let Expr::Closure { params, .. } = e {
            closures += 1;
            assert_eq!(params.len(), 1);
        }
    });
    assert_eq!(closures, 2, "both |x| and move |x| closures must parse");
}

#[test]
fn parses_try_operator_chains() {
    let file = parse_src("fn f(s: &S) -> crate::Result<u32> {\n    Ok(s.open()?.read()?)\n}\n");
    // Ok( Try(MethodCall{read, recv: Try(MethodCall{open})}) )
    let Expr::Call { args, .. } = first_expr(&file) else {
        panic!("expected Ok(...) call");
    };
    let Expr::Try { expr, .. } = &args[0] else {
        panic!("outer ? missing");
    };
    let Expr::MethodCall { recv, method, .. } = expr.as_ref() else {
        panic!("expected .read()");
    };
    assert_eq!(method, "read");
    assert!(matches!(recv.as_ref(), Expr::Try { .. }), "inner ? missing");
}

#[test]
fn parses_field_access_and_indexing_and_ranges() {
    let file = parse_src("fn f(s: &S) -> u32 {\n    s.items[1..3].len() as u32\n}\n");
    let Expr::Cast { expr, .. } = first_expr(&file) else {
        panic!("expected cast");
    };
    let Expr::MethodCall { recv, method, .. } = expr.as_ref() else {
        panic!("expected .len()");
    };
    assert_eq!(method, "len");
    let Expr::Index { base, index, .. } = recv.as_ref() else {
        panic!("expected indexing");
    };
    assert!(matches!(base.as_ref(), Expr::FieldAccess { name, .. } if name == "items"));
    assert!(matches!(
        index.as_ref(),
        Expr::Range {
            lo: Some(_),
            hi: Some(_),
            ..
        }
    ));
}

#[test]
fn parses_struct_literal_with_functional_update() {
    let file = parse_src(
        "fn f(base: Config) -> Config {\n\
         \x20   Config { retries: 3, name: base.name.clone(), ..base }\n}\n",
    );
    let Expr::StructLit {
        path, fields, base, ..
    } = first_expr(&file)
    else {
        panic!("expected struct literal");
    };
    assert_eq!(path.last().map(String::as_str), Some("Config"));
    assert_eq!(fields.len(), 2);
    assert_eq!(fields[0].0, "retries");
    assert!(base.is_some(), "..base must be captured");
}

#[test]
fn parses_macro_calls_exact_and_recovered() {
    let file = parse_src(
        "fn f(x: Option<u32>) -> bool {\n\
         \x20   let v = vec![1, 2, 3];\n\
         \x20   drop(v);\n\
         \x20   matches!(x, Some(n) if n > 2)\n}\n",
    );
    let Stmt::Let {
        init: Some(Expr::MacroCall {
            name, args, parsed, ..
        }),
        ..
    } = &body_stmts(&file)[0]
    else {
        panic!("expected vec![] init");
    };
    assert_eq!(name, "vec");
    assert_eq!(args.len(), 3);
    assert!(parsed, "vec! args are plain expressions — exact parse");

    let Some(Stmt::Expr {
        expr: Expr::MacroCall { name, parsed, .. },
        ..
    }) = body_stmts(&file).last()
    else {
        panic!("expected matches! tail");
    };
    assert_eq!(name, "matches");
    assert!(!parsed, "matches! takes a pattern — recovered, not parsed");
}

#[test]
fn parses_binary_precedence_and_casts() {
    let file = parse_src("fn f(a: u64, b: u64, c: u64) -> u64 {\n    a + b * c\n}\n");
    let Expr::Binary { op, lhs, rhs, .. } = first_expr(&file) else {
        panic!("expected binary");
    };
    assert_eq!(op, "+");
    assert!(matches!(lhs.as_ref(), Expr::Path { .. }));
    assert!(
        matches!(rhs.as_ref(), Expr::Binary { op, .. } if op == "*"),
        "* must bind tighter than +"
    );
}

#[test]
fn parses_compound_assignment() {
    let file = parse_src("fn f(mut x: u64) {\n    x += 1;\n    x = 0;\n}\n");
    let stmts = body_stmts(&file);
    assert!(matches!(
        &stmts[0],
        Stmt::Expr { expr: Expr::Assign { op: Some(op), .. }, .. } if op == "+"
    ));
    assert!(matches!(
        &stmts[1],
        Stmt::Expr {
            expr: Expr::Assign { op: None, .. },
            ..
        }
    ));
}

#[test]
fn parses_tuples_arrays_refs_unary() {
    let file = parse_src(
        "fn f(x: u32) -> (u32, bool) {\n\
         \x20   let a = [0u8; 16];\n\
         \x20   let r = &mut a;\n\
         \x20   (!x, -1 < 0)\n}\n",
    );
    let stmts = body_stmts(&file);
    assert!(matches!(
        &stmts[0],
        Stmt::Let { init: Some(Expr::Array { elems, .. }), .. } if elems.len() == 2
    ));
    assert!(matches!(
        &stmts[1],
        Stmt::Let {
            init: Some(Expr::Ref { is_mut: true, .. }),
            ..
        }
    ));
    let Some(Stmt::Expr {
        expr: Expr::Tuple { elems, .. },
        ..
    }) = stmts.last()
    else {
        panic!("expected tuple tail");
    };
    assert_eq!(elems.len(), 2);
    assert!(matches!(&elems[0], Expr::Unary { op: '!', .. }));
}

#[test]
fn parses_impl_blocks_and_traits() {
    let file = parse_src(
        "impl Iterator for Segment {\n\
         \x20   fn next(&mut self) -> Option<u32> { None }\n\
         }\n\
         trait Store {\n\
         \x20   fn get(&self, k: &[u8]) -> Option<u32>;\n\
         \x20   fn has(&self, k: &[u8]) -> bool { self.get(k).is_some() }\n\
         }\n",
    );
    let Item::Impl {
        self_ty,
        trait_,
        items,
        ..
    } = &file.items[0]
    else {
        panic!("expected impl");
    };
    assert_eq!(self_ty, "Segment");
    assert_eq!(trait_.as_deref(), Some("Iterator"));
    assert!(matches!(&items[0], Item::Fn(f) if f.has_self && f.name == "next"));

    let Item::Trait { name, items, .. } = &file.items[1] else {
        panic!("expected trait");
    };
    assert_eq!(name, "Store");
    assert!(
        matches!(&items[0], Item::Fn(f) if f.body.is_none()),
        "signature-only method"
    );
    assert!(
        matches!(&items[1], Item::Fn(f) if f.body.is_some()),
        "default method body parses"
    );
}

#[test]
fn parses_nested_modules_and_items_in_bodies() {
    let file = parse_src(
        "mod tests {\n\
         \x20   pub fn outer() {\n\
         \x20       fn inner() {}\n\
         \x20       inner();\n\
         \x20   }\n\
         }\n",
    );
    let Item::Mod { name, items, .. } = &file.items[0] else {
        panic!("expected mod");
    };
    assert_eq!(name, "tests");
    let Item::Fn(outer) = &items[0] else {
        panic!("expected fn")
    };
    assert!(
        outer
            .body
            .as_ref()
            .unwrap()
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::Item(i) if matches!(i.as_ref(), Item::Fn(_)))),
        "nested fn must be a body item"
    );
}

#[test]
fn parses_return_with_and_without_value() {
    let file = parse_src(
        "fn f(x: u32) -> u32 {\n\
         \x20   if x == 0 { return 1; }\n\
         \x20   return x;\n}\n",
    );
    let mut returns = Vec::new();
    liquid_lint::ast::walk_block(first_fn(&file).body.as_ref().unwrap(), &mut |e| {
        if let Expr::Return { value, .. } = e {
            returns.push(value.is_some());
        }
    });
    assert_eq!(returns, vec![true, true]);
}

// ---------------------------------------------------------------------
// CFG shapes: branch, loop, early return.
// ---------------------------------------------------------------------

fn cfg_of(src: &str) -> cfg::Cfg {
    let file = parse_src(src);
    cfg::lower_fn(first_fn(&file))
}

/// Blocks reachable from `from`.
fn reachable(g: &cfg::Cfg, from: usize) -> Vec<usize> {
    let mut seen = vec![false; g.blocks.len()];
    let mut stack = vec![from];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut seen[b], true) {
            continue;
        }
        stack.extend(g.blocks[b].succs.iter().copied());
    }
    (0..g.blocks.len()).filter(|&b| seen[b]).collect()
}

#[test]
fn cfg_branch_forks_and_rejoins() {
    let g = cfg_of(
        "fn f(x: u32) -> u32 {\n\
         \x20   if x == 0 { one() } else { two() }\n}\n",
    );
    // Some block forks two ways, and both sides reach the exit.
    let fork = g
        .blocks
        .iter()
        .position(|b| b.succs.len() == 2)
        .expect("an if must produce a two-way fork");
    for &side in &g.blocks[fork].succs {
        assert!(
            reachable(&g, side).contains(&g.exit),
            "both branch sides must rejoin and reach exit"
        );
    }
}

#[test]
fn cfg_loop_has_back_edge() {
    let g = cfg_of("fn f() {\n    while running() {\n        step();\n    }\n}\n");
    let has_back_edge = g
        .blocks
        .iter()
        .enumerate()
        .any(|(i, b)| b.succs.iter().any(|&s| s <= i && s != g.exit));
    assert!(has_back_edge, "a while loop must lower to a cycle");
    assert!(
        reachable(&g, g.entry).contains(&g.exit),
        "loop exit edge missing"
    );
}

#[test]
fn cfg_infinite_loop_without_break_cannot_reach_exit() {
    let g = cfg_of("fn f() {\n    loop {\n        step();\n    }\n}\n");
    assert!(
        !reachable(&g, g.entry).contains(&g.exit),
        "loop without break has no normal exit"
    );

    let g =
        cfg_of("fn f() {\n    loop {\n        if done() { break; }\n        step();\n    }\n}\n");
    assert!(
        reachable(&g, g.entry).contains(&g.exit),
        "break must create the exit edge"
    );
}

#[test]
fn cfg_early_return_edges_to_exit() {
    let g = cfg_of(
        "fn f(x: u32) -> u32 {\n\
         \x20   if x == 0 {\n        return 1;\n    }\n\
         \x20   tail()\n}\n",
    );
    // The exit has (at least) two predecessors: the early return and
    // the normal fallthrough.
    let preds = g.preds();
    assert!(
        preds[g.exit].len() >= 2,
        "early return and fallthrough must both edge to exit; preds={:?}",
        preds[g.exit]
    );
}

#[test]
fn cfg_try_operator_edges_to_exit() {
    let g = cfg_of("fn f(s: &S) -> crate::Result<u32> {\n    let v = s.read()?;\n    Ok(v)\n}\n");
    let preds = g.preds();
    assert!(
        preds[g.exit].len() >= 2,
        "? must add an error edge to exit; preds={:?}",
        preds[g.exit]
    );
}

#[test]
fn cfg_bodyless_fn_is_entry_exit_only() {
    let file = parse_src("trait T {\n    fn sig(&self) -> u32;\n}\n");
    let g = cfg::lower_fn(first_fn(&file));
    assert_eq!(g.blocks.len(), 2);
    assert!(g.blocks.iter().all(|b| b.ops.is_empty()));
}

// ---------------------------------------------------------------------
// Acceptance bar: the whole tree parses.
// ---------------------------------------------------------------------

#[test]
fn every_workspace_file_parses() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut failures = Vec::new();
    for rel in workspace_files(&root).expect("workspace files") {
        let src = fs::read_to_string(root.join(&rel)).expect("read");
        let lexed = lexer::lex(&src);
        if let Err(e) = parse::parse_file(&lexed.tokens) {
            failures.push(format!("{rel}: {e}"));
        }
    }
    assert!(
        failures.is_empty(),
        "parse failures:\n{}",
        failures.join("\n")
    );
}
