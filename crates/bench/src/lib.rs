//! Benchmark harness for the Liquid reproduction.
//!
//! See `src/bin/` for the experiment binaries (one per figure/claim,
//! E1–E10) and `benches/` for the Criterion microbenchmarks. Shared
//! helpers live in [`report`].

#![forbid(unsafe_code)]

pub mod report;
