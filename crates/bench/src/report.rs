//! Shared reporting helpers for experiment binaries.

/// Prints a Markdown-style table header.
pub fn table_header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints one table row.
pub fn table_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Formats bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
    }
}
