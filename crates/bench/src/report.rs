//! Shared reporting helpers for experiment binaries.

use std::path::PathBuf;

use liquid_obs::json::{write_str, Json};
use liquid_obs::Snapshot;

/// Renders the `BENCH_<experiment>.json` document: the experiment id
/// plus the full registry snapshot of the run.
pub fn bench_json(experiment: &str, snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"experiment\":");
    write_str(&mut out, experiment);
    out.push_str(",\"snapshot\":");
    out.push_str(&snapshot.to_json());
    out.push('}');
    out
}

/// Writes `BENCH_<experiment>.json` into the current directory and
/// returns the path. Experiment binaries call this last, so a run's
/// metrics are machine-readable next to its printed tables.
pub fn write_bench(experiment: &str, snapshot: &Snapshot) -> PathBuf {
    let path = PathBuf::from(format!("BENCH_{experiment}.json"));
    let text = bench_json(experiment, snapshot);
    std::fs::write(&path, &text).expect("write BENCH json");
    println!("wrote {}", path.display());
    path
}

/// Validates the `BENCH_*.json` schema: a JSON object with a string
/// `experiment` and a `snapshot` parseable as an [`Snapshot`]. Returns
/// the experiment id on success.
pub fn check_bench_schema(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).ok_or("not valid JSON")?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let experiment = obj
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("missing string field \"experiment\"")?;
    let snap_val = obj.get("snapshot").ok_or("missing field \"snapshot\"")?;
    Snapshot::from_value(snap_val).ok_or("\"snapshot\" is not a registry snapshot")?;
    Ok(experiment.to_string())
}

/// Prints a Markdown-style table header.
pub fn table_header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints one table row.
pub fn table_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Formats bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_round_trips_schema() {
        let mut snap = Snapshot::default();
        snap.counters.insert("cluster.messages_in".into(), 42);
        snap.gauges
            .insert("partition.high_watermark{tp=t-0}".into(), 7);
        let text = bench_json("e2", &snap);
        assert_eq!(check_bench_schema(&text).unwrap(), "e2");
        let doc = Json::parse(&text).unwrap();
        let back = Snapshot::from_value(doc.as_object().unwrap().get("snapshot").unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn bench_schema_rejects_malformed_documents() {
        assert!(check_bench_schema("not json").is_err());
        assert!(check_bench_schema("{}").is_err());
        assert!(check_bench_schema("{\"experiment\":7,\"snapshot\":{}}").is_err());
        assert!(check_bench_schema("{\"experiment\":\"e1\",\"snapshot\":[]}").is_err());
        assert!(check_bench_schema(
            "{\"experiment\":\"e1\",\
                 \"snapshot\":{\"counters\":{},\"gauges\":{},\"histograms\":{}}}"
        )
        .is_ok());
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
    }
}
