//! E4 — §4.1: log compaction. "Performing log compaction not only
//! reduces the changelog size, but it also allows for faster recovery."
//!
//! Writes 200,000 keyed state updates over key populations of different
//! sizes (fixed update volume, varying distinct keys), compacts the
//! changelog, and reports size reduction plus the number of records a
//! recovering task must replay before and after.

use bytes::Bytes;
use liquid_bench::report::{fmt_bytes, table_header, table_row};
use liquid_messaging::{AckLevel, Cluster, ClusterConfig, TopicConfig, TopicPartition};
use liquid_sim::clock::SimClock;
use liquid_sim::rng::{seeded, Zipf};
use rand::Rng;

const UPDATES: u64 = 200_000;

fn run(keys: usize, obs: &liquid_obs::Obs) -> (u64, u64, u64, u64, f64) {
    let clock = SimClock::new(0);
    let config = ClusterConfig::builder()
        .brokers(1)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let cluster = Cluster::new(config, clock.shared());
    cluster
        .create_topic(
            "changelog",
            TopicConfig::with_partitions(1)
                .compacted()
                .segment_bytes(256 * 1024),
        )
        .unwrap();
    let tp = TopicPartition::new("changelog", 0);
    let zipf = Zipf::new(keys, 1.0);
    let mut rng = seeded(7);
    for _ in 0..UPDATES {
        let k = zipf.sample(&mut rng);
        let v: u64 = rng.gen();
        cluster
            .produce_to(
                &tp,
                Some(Bytes::from(format!("key-{k:08}"))),
                Bytes::from(format!("state-value-{v:020}")),
                AckLevel::Leader,
            )
            .unwrap();
    }
    let bytes_before = cluster.topic_size_bytes("changelog").unwrap();
    let records_before = UPDATES;
    let stats = cluster.compact_topic("changelog").unwrap();
    let bytes_after = cluster.topic_size_bytes("changelog").unwrap();
    // Recovery replay = records remaining in the log.
    let records_after = cluster
        .fetch_batch(&tp, cluster.earliest_offset(&tp).unwrap(), u64::MAX)
        .unwrap()
        .len() as u64;
    (
        records_before,
        records_after,
        bytes_before,
        bytes_after,
        stats.dedup_ratio(),
    )
}

fn main() {
    println!("# E4: log compaction vs key population ({UPDATES} zipf(1.0) updates)");
    table_header(&[
        "distinct keys",
        "replay before",
        "replay after",
        "size before",
        "size after",
        "sealed dedup",
    ]);
    let obs = liquid_obs::Obs::default();
    for keys in [100usize, 1_000, 10_000, 100_000] {
        let (rb, ra, bb, ba, ratio) = run(keys, &obs);
        let keys_label = keys.to_string();
        let labels = [("keys", keys_label.as_str())];
        let reg = obs.registry();
        reg.gauge_with("bench.replay_before", &labels).set(rb);
        reg.gauge_with("bench.replay_after", &labels).set(ra);
        reg.gauge_with("bench.bytes_before", &labels).set(bb);
        reg.gauge_with("bench.bytes_after", &labels).set(ba);
        table_row(&[
            keys.to_string(),
            rb.to_string(),
            ra.to_string(),
            fmt_bytes(bb),
            fmt_bytes(ba),
            format!("{:.1}%", ratio * 100.0),
        ]);
    }
    println!();
    println!(
        "paper claim: keyed changelogs shrink to ~one record per live key, so\n\
         both storage and state-recovery time drop — most sharply when updates\n\
         are skewed over few keys."
    );
    liquid_bench::report::write_bench("e4", &obs.snapshot());
}
