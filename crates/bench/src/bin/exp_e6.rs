//! E6 — §4.3: the durability/throughput trade-off and N−1 fault
//! tolerance.
//!
//! A 3-broker cluster with replication factor 3. For each ack level we
//! measure producer throughput, then crash the leader and count how
//! many acknowledged messages survive. `acks=All` pays replication on
//! the produce path but loses nothing; `acks=Leader`/`None` are faster
//! and lose the unreplicated suffix.

use std::time::Instant;

use bytes::Bytes;
use liquid_bench::report::{table_header, table_row};
use liquid_messaging::{AckLevel, Cluster, ClusterConfig, Producer, TopicConfig, TopicPartition};
use liquid_sim::clock::SimClock;

const MESSAGES: u64 = 30_000;

fn run(acks: AckLevel, label: &str, obs: &liquid_obs::Obs) -> Vec<String> {
    let clock = SimClock::new(0);
    let config = ClusterConfig::builder()
        .brokers(3)
        .replication(3)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let cluster = Cluster::new(config, clock.shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(1).replication(3))
        .unwrap();
    let tp = TopicPartition::new("t", 0);
    let producer = Producer::new(&cluster, "t").unwrap().with_acks(acks);
    let t = Instant::now();
    let mut acked = 0u64;
    for i in 0..MESSAGES {
        if producer.send(None, Bytes::from(format!("m{i:08}"))).is_ok() {
            acked += 1;
        }
        // Followers replicate continuously in the background; model it
        // as a replication round every 1,024 messages (the crash below
        // lands mid-interval, as real crashes do).
        if i % 1_024 == 1_023 {
            cluster.replicate_tick().unwrap();
        }
    }
    let secs = t.elapsed().as_secs_f64();
    // Crash the leader before the next replication round.
    let leader = cluster.leader(&tp).unwrap().unwrap();
    cluster.kill_broker(leader).unwrap();
    let survived = cluster
        .fetch_batch(&tp, 0, u64::MAX)
        .unwrap()
        .into_messages()
        .len() as u64;
    let lost = acked.saturating_sub(survived);
    vec![
        label.to_string(),
        format!("{:.0}", MESSAGES as f64 / secs / 1_000.0),
        acked.to_string(),
        survived.to_string(),
        lost.to_string(),
        format!("{:.2}%", lost as f64 / acked.max(1) as f64 * 100.0),
    ]
}

fn n_minus_one() {
    // Availability under cascading failures: with 3 ISR members the
    // partition serves through 2 failures and only dies at the third.
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(3), clock.shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(1).replication(3))
        .unwrap();
    let tp = TopicPartition::new("t", 0);
    for i in 0..1_000 {
        cluster
            .produce_to(&tp, None, Bytes::from(format!("m{i}")), AckLevel::All)
            .unwrap();
    }
    println!("\navailability under cascading broker failures (RF=3, acks=All):");
    table_header(&["failures", "partition available", "messages readable"]);
    for failures in 0..=3u32 {
        if failures > 0 {
            if let Ok(Some(leader)) = cluster.leader(&tp) {
                cluster.kill_broker(leader).unwrap();
            }
        }
        let readable = cluster
            .fetch_batch(&tp, 0, u64::MAX)
            .map(|b| b.len().to_string())
            .unwrap_or_else(|_| "-".to_string());
        let available = cluster
            .leader(&tp)
            .ok()
            .flatten()
            .map(|_| "yes")
            .unwrap_or("NO");
        table_row(&[failures.to_string(), available.to_string(), readable]);
    }
}

fn main() {
    println!("# E6: durability vs throughput per ack level ({MESSAGES} msgs, RF=3)");
    table_header(&[
        "acks",
        "produce Kmsg/s",
        "acked",
        "survive leader crash",
        "lost",
        "loss rate",
    ]);
    let obs = liquid_obs::Obs::default();
    for (acks, label) in [
        (AckLevel::None, "none (fire+forget)"),
        (AckLevel::Leader, "leader"),
        (AckLevel::All, "all (ISR)"),
    ] {
        table_row(&run(acks, label, &obs));
    }
    n_minus_one();
    println!();
    println!(
        "paper claim: maximum durability waits for all ISR acknowledgments and\n\
         costs throughput; minimum durability acks immediately and loses the\n\
         unreplicated suffix on leader failure. N ISRs tolerate N-1 failures."
    );
    liquid_bench::report::write_bench("e6", &obs.snapshot());
}
