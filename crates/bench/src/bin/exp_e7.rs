//! E7 — §3.2/§4.4: resource isolation (ETL-as-a-service).
//!
//! Two jobs share one processing node: a well-behaved job sized to its
//! input rate, and a noisy neighbour that demands 4x its quota every
//! tick. With container isolation the polite job's consumer lag stays
//! bounded; with isolation disabled the noisy job drains the node's
//! shared CPU pool first and the polite job starves.

use liquid::prelude::*;
use liquid_bench::report::{table_header, table_row};

const TICKS: u64 = 200;
const ARRIVALS_PER_TICK: u64 = 400;
/// Node CPU per tick; each message costs 1 unit.
const NODE_CPU: u64 = 1_000;

fn run(isolation: bool) -> (u64, u64, u64) {
    let clock = SimClock::new(0);
    let liquid = Liquid::new(
        LiquidConfig {
            nodes: vec![(NODE_CPU, 16_384)],
            ..LiquidConfig::default()
        },
        clock.shared(),
    );
    liquid.resources().set_isolation(isolation);
    liquid
        .create_source_feed("polite-in", FeedConfig::default())
        .unwrap();
    liquid
        .create_source_feed("noisy-in", FeedConfig::default())
        .unwrap();

    // Noisy job: 500 CPU quota but its input arrives at 4000/tick, so
    // it demands far more than its share — and, scheduled first, it
    // gets first crack at the node's pool each tick. Polite job: 500
    // quota, needs only 400/tick.
    let noisy = liquid
        .submit_job(
            JobConfig::new("noisy", &["noisy-in"]).stateless(),
            ContainerRequest {
                cpu_per_tick: 500,
                memory_mb: 256,
            },
            |_| Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(()))),
        )
        .unwrap();
    let polite = liquid
        .submit_job(
            JobConfig::new("polite", &["polite-in"]).stateless(),
            ContainerRequest {
                cpu_per_tick: 500,
                memory_mb: 256,
            },
            |_| Box::new(FnTask(|_: &Message, _: &mut TaskContext<'_>| Ok(()))),
        )
        .unwrap();

    let polite_producer = liquid.producer("polite-in").unwrap();
    let noisy_producer = liquid.producer("noisy-in").unwrap();
    for _ in 0..TICKS {
        for i in 0..ARRIVALS_PER_TICK {
            polite_producer.send_value(format!("p{i}")).unwrap();
        }
        for i in 0..ARRIVALS_PER_TICK * 10 {
            noisy_producer.send_value(format!("n{i}")).unwrap();
        }
        clock.advance(1_000);
        liquid.run_tick().unwrap();
    }
    let (p50, p99) = liquid
        .with_job(polite, |mj| (mj.lag_stats().p50(), mj.lag_stats().p99()))
        .unwrap();
    let noisy_done = liquid.with_job(noisy, |mj| mj.job().processed()).unwrap();
    (p50, p99, noisy_done)
}

fn main() {
    println!(
        "# E7: noisy-neighbour isolation ({TICKS} ticks, polite load {ARRIVALS_PER_TICK}/tick, \
         noisy load {}/tick, node cpu {NODE_CPU}/tick)",
        ARRIVALS_PER_TICK * 10
    );
    table_header(&[
        "isolation",
        "polite lag p50",
        "polite lag p99",
        "noisy processed",
    ]);
    let obs = liquid_obs::Obs::default();
    for (iso, label) in [(true, "on (containers)"), (false, "off (shared pool)")] {
        let (p50, p99, noisy) = run(iso);
        let mode = if iso { "on" } else { "off" };
        let labels = [("isolation", mode)];
        let reg = obs.registry();
        reg.gauge_with("bench.polite_lag_p50", &labels).set(p50);
        reg.gauge_with("bench.polite_lag_p99", &labels).set(p99);
        reg.gauge_with("bench.noisy_processed", &labels).set(noisy);
        table_row(&[
            label.to_string(),
            p50.to_string(),
            p99.to_string(),
            noisy.to_string(),
        ]);
    }
    println!();
    println!(
        "paper claim: container-based isolation guarantees each ETL job a\n\
         minimum service level; without it a resource-intensive job degrades\n\
         its neighbours (the polite job's lag explodes)."
    );
    liquid_bench::report::write_bench("e7", &obs.snapshot());
}
