//! E10 — §5: the deployment profile, scaled down.
//!
//! LinkedIn's deployment: "ingests over 50 TB of input data and
//! produces over 250 TB of output data daily (including replication)
//! … over 25,000 topics and 200,000 partitions". The 1:5 in/out
//! amplification comes from replication (factor ~2-3) plus multi-group
//! fan-out. We reproduce the *shape* at MB scale: a census of topics and
//! partitions, ingest X MB, and measure total bytes leaving the ingest
//! path (replication traffic + consumer deliveries).

use liquid_bench::report::{fmt_bytes, table_header, table_row, write_bench};
use liquid_messaging::consumer::StartPosition;
use liquid_messaging::{
    AssignmentStrategy, Cluster, ClusterConfig, Consumer, Producer, TopicConfig,
};
use liquid_obs::Obs;
use liquid_sim::clock::SimClock;

const TOPICS: usize = 25;
const PARTITIONS_PER_TOPIC: u32 = 8;
const REPLICATION: u32 = 2;
const MESSAGES_PER_TOPIC: u64 = 2_000;
const PAYLOAD: usize = 512;
/// Back-end systems subscribed per topic (fan-out groups).
const GROUPS: usize = 4;

fn main() {
    let clock = SimClock::new(0);
    let obs = Obs::default();
    let config = ClusterConfig::builder()
        .brokers(4)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let cluster = Cluster::new(config, clock.shared());
    for t in 0..TOPICS {
        cluster
            .create_topic(
                &format!("topic-{t:03}"),
                TopicConfig::with_partitions(PARTITIONS_PER_TOPIC).replication(REPLICATION),
            )
            .unwrap();
    }
    println!("# E10: deployment profile (scaled 1:10^6 from the paper's §5)");
    println!();
    let total_partitions = TOPICS as u32 * PARTITIONS_PER_TOPIC;
    table_header(&["metric", "paper (production)", "this run (scaled)"]);
    table_row(&["topics".into(), "25,000".into(), TOPICS.to_string()]);
    table_row(&[
        "partitions".into(),
        "200,000".into(),
        total_partitions.to_string(),
    ]);
    table_row(&[
        "partitions/topic".into(),
        "~8".into(),
        PARTITIONS_PER_TOPIC.to_string(),
    ]);

    // Ingest.
    let payload = "x".repeat(PAYLOAD);
    for t in 0..TOPICS {
        let producer = Producer::new(&cluster, &format!("topic-{t:03}")).unwrap();
        for i in 0..MESSAGES_PER_TOPIC {
            producer
                .send(None, bytes::Bytes::from(format!("{payload}{i}")))
                .unwrap();
        }
    }
    cluster.replicate_tick().unwrap();

    // Fan-out: GROUPS back-end systems consume every topic.
    let topic_names: Vec<String> = (0..TOPICS).map(|t| format!("topic-{t:03}")).collect();
    let topic_refs: Vec<&str> = topic_names.iter().map(String::as_str).collect();
    for g in 0..GROUPS {
        let consumer = Consumer::in_group(&cluster, &format!("backend-{g}"), "m0");
        consumer
            .subscribe(
                &topic_refs,
                AssignmentStrategy::Range,
                StartPosition::Earliest,
            )
            .unwrap();
        loop {
            let polled: usize = consumer
                .poll_batches()
                .unwrap()
                .iter()
                .map(|(_, b)| b.len())
                .sum();
            if polled == 0 {
                break;
            }
        }
    }

    let snap = cluster.snapshot();
    let bytes_in = snap.counter("cluster.bytes_in");
    let bytes_out = snap.counter("cluster.bytes_out");
    let replicated_bytes = snap.counter("cluster.replicated_bytes");
    let out_total = bytes_out + replicated_bytes;
    println!();
    table_header(&["flow", "bytes", "vs ingest"]);
    table_row(&[
        "ingest (producers)".into(),
        fmt_bytes(bytes_in),
        "1.0x".into(),
    ]);
    table_row(&[
        "replication traffic".into(),
        fmt_bytes(replicated_bytes),
        format!("{:.1}x", replicated_bytes as f64 / bytes_in as f64),
    ]);
    table_row(&[
        "consumer deliveries".into(),
        fmt_bytes(bytes_out),
        format!("{:.1}x", bytes_out as f64 / bytes_in as f64),
    ]);
    table_row(&[
        "total out".into(),
        fmt_bytes(out_total),
        format!("{:.1}x", out_total as f64 / bytes_in as f64),
    ]);
    println!();
    println!(
        "paper claim: 50 TB in -> 250 TB out daily including replication, i.e.\n\
         ~5x amplification from replication (x{}) plus multi-consumer fan-out\n\
         (x{GROUPS} here); the shape reproduces at any scale.",
        REPLICATION - 1
    );
    write_bench("e10", &snap);
}
