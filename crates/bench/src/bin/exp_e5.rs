//! E5 — §4.2: incremental processing. "Reading all data each time that
//! it changes would be infeasible — the required time would increase
//! linearly with data size. Instead, the processing layer … reads only
//! the new data, appending new results to its state."
//!
//! Maintains per-key statistics over a growing history. After each
//! refresh, 1% new data arrives. We compare the cost (messages
//! processed and wall time) of a full recompute against the incremental
//! path (restore checkpoint, process only the delta).

use std::time::Instant;

use bytes::Bytes;
use liquid_bench::report::{fmt_ns, table_header, table_row};
use liquid_messaging::{AckLevel, Cluster, ClusterConfig, Message, TopicConfig, TopicPartition};
use liquid_processing::{FnTask, Job, JobConfig, JobStart, TaskContext};
use liquid_sim::clock::SimClock;

fn counting_factory() -> impl FnMut(u32) -> Box<dyn liquid_processing::StreamTask> {
    |_| {
        Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
            let key = m.key.clone().unwrap_or_default();
            ctx.store().add_counter(&key, 1)?;
            Ok(())
        }))
    }
}

fn run(history: u64, obs: &liquid_obs::Obs) -> (u64, u64, u64, u64) {
    let clock = SimClock::new(0);
    let config = ClusterConfig::builder()
        .brokers(1)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let cluster = Cluster::new(config, clock.shared());
    cluster
        .create_topic("events", TopicConfig::with_partitions(1))
        .unwrap();
    let tp = TopicPartition::new("events", 0);
    let produce = |n: u64, tag: &str| {
        for i in 0..n {
            cluster
                .produce_to(
                    &tp,
                    Some(Bytes::from(format!("k{}", i % 50))),
                    Bytes::from(format!("{tag}{i}")),
                    AckLevel::Leader,
                )
                .unwrap();
        }
    };
    produce(history, "h");
    // Steady job processes history once and checkpoints.
    {
        let mut job = Job::new(
            &cluster,
            JobConfig::new("stats", &["events"]),
            counting_factory(),
        )
        .unwrap();
        job.run_until_idle(500).unwrap();
        job.checkpoint().unwrap();
    }
    let delta = (history / 100).max(1);
    produce(delta, "d");
    // Background compaction keeps the changelog near one record per
    // live key (§4.1), so the restore below is cheap.
    cluster.compact_topic("__stats-state").unwrap();

    // Incremental refresh: new instance restores + reads only the delta.
    let t = Instant::now();
    let mut inc = Job::new(
        &cluster,
        JobConfig::new("stats", &["events"]),
        counting_factory(),
    )
    .unwrap();
    let inc_msgs = inc.run_until_idle(500).unwrap();
    inc.checkpoint().unwrap();
    let inc_ns = t.elapsed().as_nanos() as u64;

    // Full recompute: fresh job name, start from the beginning.
    let t = Instant::now();
    let mut full = Job::new(
        &cluster,
        JobConfig::new("stats-full", &["events"])
            .start_from(JobStart::Earliest)
            .stateless(),
        counting_factory(),
    )
    .unwrap();
    let full_msgs = full.run_until_idle(1000).unwrap();
    let full_ns = t.elapsed().as_nanos() as u64;
    (inc_msgs, inc_ns, full_msgs, full_ns)
}

fn main() {
    println!("# E5: incremental refresh vs full recompute (delta = 1% of history)");
    table_header(&[
        "history (msgs)",
        "incremental msgs",
        "incremental time",
        "full msgs",
        "full time",
        "work ratio",
    ]);
    let obs = liquid_obs::Obs::default();
    for history in [10_000u64, 50_000, 200_000, 500_000] {
        let (im, it, fm, ft) = run(history, &obs);
        let history_label = history.to_string();
        let labels = [("history", history_label.as_str())];
        let reg = obs.registry();
        reg.gauge_with("bench.incremental_msgs", &labels).set(im);
        reg.gauge_with("bench.full_msgs", &labels).set(fm);
        table_row(&[
            history.to_string(),
            im.to_string(),
            fmt_ns(it),
            fm.to_string(),
            fmt_ns(ft),
            format!("{:.0}x", fm as f64 / im.max(1) as f64),
        ]);
    }
    println!();
    println!(
        "paper claim: full recompute grows linearly with history; the\n\
         incremental path (checkpointed offsets + maintained state) costs only\n\
         the delta, a constant ~100x saving at 1% change rate."
    );
    liquid_bench::report::write_bench("e5", &obs.snapshot());
}
