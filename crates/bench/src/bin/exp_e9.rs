//! E9 — Figure 3 / §3.1: consumer-group semantics and scaling.
//!
//! Verifies the two delivery guarantees of the figure — queue semantics
//! *within* a group (each message to exactly one member) and pub/sub
//! semantics *across* groups (each subscribed group sees everything) —
//! and measures how aggregate consume throughput scales as consumers
//! are added to a group over an 8-partition topic.

use std::collections::HashSet;
use std::time::Instant;

use liquid_bench::report::{table_header, table_row};
use liquid_messaging::consumer::StartPosition;
use liquid_messaging::{
    AssignmentStrategy, Cluster, ClusterConfig, Consumer, Producer, TopicConfig,
};
use liquid_sim::clock::SimClock;

const PARTITIONS: u32 = 8;
const MESSAGES: u64 = 80_000;

fn setup(obs: &liquid_obs::Obs) -> Cluster {
    let clock = SimClock::new(0);
    let config = ClusterConfig::builder()
        .brokers(2)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let cluster = Cluster::new(config, clock.shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(PARTITIONS).replication(2))
        .unwrap();
    let producer = Producer::new(&cluster, "t").unwrap();
    for i in 0..MESSAGES {
        producer
            .send(None, bytes::Bytes::from(format!("m{i:08}")))
            .unwrap();
    }
    cluster.replicate_tick().unwrap();
    cluster
}

fn consume_with(cluster: &Cluster, group: &str, members: usize) -> (u64, f64, bool) {
    let consumers: Vec<Consumer> = (0..members)
        .map(|m| Consumer::in_group(cluster, group, &format!("{group}-m{m}")))
        .collect();
    for c in &consumers {
        c.subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
            .unwrap();
    }
    let t = Instant::now();
    let mut seen: HashSet<(u32, u64)> = HashSet::new();
    let mut total = 0u64;
    let mut disjoint = true;
    loop {
        let mut progress = 0;
        for c in &consumers {
            for (tp, batch) in c.poll_batches().unwrap() {
                for m in batch.records() {
                    if !seen.insert((tp.partition, m.offset)) {
                        disjoint = false;
                    }
                    total += 1;
                    progress += 1;
                }
            }
        }
        if progress == 0 {
            break;
        }
    }
    (total, t.elapsed().as_secs_f64(), disjoint)
}

fn main() {
    println!("# E9: consumer groups — Figure 3 semantics + scaling ({MESSAGES} msgs, {PARTITIONS} partitions)");

    let obs = liquid_obs::Obs::default();

    // Scaling within one group.
    println!("\nqueue semantics within a group (each message to exactly one member):");
    table_header(&["members", "consumed", "exactly-once-per-group", "Kmsg/s"]);
    for members in [1usize, 2, 4, 8] {
        let cluster = setup(&obs);
        let (total, secs, disjoint) = consume_with(&cluster, "g", members);
        let members_label = members.to_string();
        let labels = [("members", members_label.as_str())];
        let reg = obs.registry();
        reg.gauge_with("bench.group_consumed", &labels).set(total);
        reg.gauge_with("bench.group_kmsg_per_s", &labels)
            .set((total as f64 / secs / 1_000.0) as u64);
        table_row(&[
            members.to_string(),
            total.to_string(),
            if disjoint && total == MESSAGES {
                "yes"
            } else {
                "VIOLATED"
            }
            .to_string(),
            format!("{:.0}", total as f64 / secs / 1_000.0),
        ]);
    }

    // Pub/sub across groups.
    println!("\npub/sub across groups (every group sees every message):");
    table_header(&["group", "members", "consumed"]);
    let cluster = setup(&obs);
    for (group, members) in [("analytics", 2usize), ("search-index", 3), ("archive", 1)] {
        let (total, _, disjoint) = consume_with(&cluster, group, members);
        assert!(disjoint);
        table_row(&[group.to_string(), members.to_string(), total.to_string()]);
    }
    println!();
    println!(
        "paper claim: within a consumer group the system behaves as a queue\n\
         (load-balanced, each message to one member); across groups as\n\
         publish/subscribe (every group receives everything)."
    );
    liquid_bench::report::write_bench("e9", &obs.snapshot());
}
