//! E3 — §4.1: anti-caching. "The head of the log is maintained in
//! memory for back-end systems that need low-latency access … the
//! initial [random-access] reads are slower due to the OS loading pages
//! into RAM; after typically a few seconds, successive reads become fast
//! due to prefetching."
//!
//! Fills a log through the page-cache model, evicting the cold tail,
//! then measures: (a) hot tail reads, (b) a rewind to offset 0 — the
//! first batches fault from disk, then prefetching warms the path.

use std::sync::Arc;

use bytes::Bytes;
use liquid::log::{Log, LogConfig};
use liquid_bench::report::{fmt_ns, table_header, table_row};
use liquid_sim::clock::SimClock;
use liquid_sim::lockdep::Mutex;
use liquid_sim::pagecache::{PageCache, PageCacheConfig};

const MESSAGES: u64 = 50_000;
const PAYLOAD: usize = 512;
const READ_BATCH: u64 = 64 * 1024; // bytes per fetch

fn main() {
    let clock = SimClock::new(0);
    // Cache big enough for ~1/8 of the data: the head stays resident,
    // the tail ages out — exactly the paper's deployment regime.
    let cache = Arc::new(Mutex::new(
        "log.pagecache",
        PageCache::new(
            PageCacheConfig {
                capacity_pages: (MESSAGES as usize * (PAYLOAD + 24) / 4096) / 8,
                prefetch_pages: 16,
                ..PageCacheConfig::default()
            },
            clock.shared(),
        ),
    ));
    let obs = liquid_obs::Obs::default();
    let mut log = Log::open(
        LogConfig {
            segment_bytes: 1 << 20,
            obs: obs.clone(),
            ..LogConfig::default()
        },
        clock.shared(),
    )
    .unwrap();
    log.attach_cache(cache.clone(), 1);
    for i in 0..MESSAGES {
        log.append(None, Bytes::from(format!("{:0width$}", i, width = PAYLOAD)))
            .unwrap();
    }

    println!("# E3: anti-caching — hot head vs cold rewind ({MESSAGES} msgs)");

    // (a) Tail reads: served from the RAM-resident head of the log.
    let mut hot_cost = 0;
    let tail = log.next_offset() - 1_000;
    for _ in 0..5 {
        hot_cost += log.read(tail, READ_BATCH).unwrap().simulated_cost_ns;
    }
    println!("\nhot tail read (5 batches): {} total", fmt_ns(hot_cost));

    // (b) Rewind to offset 0 and stream forward: first batches fault,
    // prefetch warms the rest.
    println!("\nrewind to offset 0, sequential batches:");
    table_header(&["batch#", "cost", "note"]);
    let mut offset = 0;
    let mut costs = Vec::new();
    for batch in 0..12 {
        let out = log.read(offset, READ_BATCH).unwrap();
        if let Some(last) = out.records.last() {
            offset = last.offset + 1;
        }
        costs.push(out.simulated_cost_ns);
        let note = if batch == 0 {
            "cold: disk seek + fault"
        } else if out.simulated_cost_ns > 100_000 {
            "segment boundary: fresh readahead"
        } else {
            "warm: prefetched"
        };
        table_row(&[
            batch.to_string(),
            fmt_ns(out.simulated_cost_ns),
            note.into(),
        ]);
    }
    let cold = costs[0];
    let mut tail: Vec<u64> = costs[3..].to_vec();
    tail.sort_unstable();
    let warm = tail[tail.len() / 2]; // median: occasional segment-boundary
                                     // seeks are real but not the steady state
    println!();
    println!(
        "cold first batch {} vs steady warm batch (median) {} => {:.0}x warm-up",
        fmt_ns(cold),
        fmt_ns(warm),
        cold as f64 / warm.max(1) as f64
    );
    let stats = cache.lock().stats();
    println!(
        "cache stats: {} hits, {} misses, {} prefetched, {} evictions",
        stats.hits, stats.misses, stats.prefetched, stats.evictions
    );
    println!();
    println!(
        "paper claim: head-of-log reads come from RAM; rewind reads are slow at\n\
         first, then prefetching makes successive sequential reads fast."
    );
    let reg = obs.registry();
    reg.gauge("bench.cold_batch_ns").set(cold);
    reg.gauge("bench.warm_batch_ns").set(warm);
    reg.gauge("bench.cache_hits").set(stats.hits);
    reg.gauge("bench.cache_misses").set(stats.misses);
    liquid_bench::report::write_bench("e3", &obs.snapshot());
}
