//! E8 — §2.2: Lambda vs Kappa vs Liquid.
//!
//! The same per-key counting task under the three architectural
//! patterns, over identical data (100k history + 10k delta, 50 keys):
//! code paths to maintain, steady-state work per update cycle,
//! reprocessing cost after a logic change, and the staleness window.

use liquid::architectures::{run_kappa, run_lambda, run_liquid, ArchReport};
use liquid_bench::report::{table_header, table_row};

const HISTORY: u64 = 100_000;
const DELTA: u64 = 10_000;
const KEYS: u64 = 50;
const BATCH_CYCLES: u64 = 3;

fn row(name: &str, r: ArchReport, obs: &liquid_obs::Obs) -> Vec<String> {
    let arch = name.to_ascii_lowercase();
    let labels = [("arch", arch.as_str())];
    let reg = obs.registry();
    reg.gauge_with("bench.code_paths", &labels)
        .set(u64::from(r.code_paths));
    reg.gauge_with("bench.steady_state_work", &labels)
        .set(r.steady_state_work);
    reg.gauge_with("bench.reprocess_work", &labels)
        .set(r.reprocess_work);
    reg.gauge_with("bench.staleness_window", &labels)
        .set(r.staleness_window);
    vec![
        name.to_string(),
        r.code_paths.to_string(),
        r.data_copies.to_string(),
        r.steady_state_work.to_string(),
        r.reprocess_work.to_string(),
        r.staleness_window.to_string(),
    ]
}

fn main() {
    println!(
        "# E8: architectures compared ({HISTORY} history + {DELTA} delta, {KEYS} keys, \
         {BATCH_CYCLES} batch cycles)"
    );
    table_header(&[
        "architecture",
        "code paths",
        "data copies",
        "steady-state work",
        "reprocess work",
        "staleness (msgs)",
    ]);
    let obs = liquid_obs::Obs::default();
    table_row(&row(
        "Lambda",
        run_lambda(HISTORY, DELTA, KEYS, BATCH_CYCLES),
        &obs,
    ));
    table_row(&row("Kappa", run_kappa(HISTORY, DELTA, KEYS), &obs));
    table_row(&row("Liquid", run_liquid(HISTORY, DELTA, KEYS), &obs));
    println!();
    println!(
        "paper claim: Lambda doubles code and hardware (batch recomputes all\n\
         history every cycle); Kappa has one path but serves stale data during\n\
         replays; Liquid's steady state is incremental (delta only) with the\n\
         same single code path and source-of-truth log."
    );
    liquid_bench::report::write_bench("e8", &obs.snapshot());
}
