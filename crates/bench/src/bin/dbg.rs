use bytes::Bytes;
use liquid_messaging::{AckLevel, Cluster, ClusterConfig, Message, TopicConfig, TopicPartition};
use liquid_processing::{FnTask, Job, JobConfig, TaskContext};
use liquid_sim::clock::SimClock;
use std::time::Instant;

fn main() {
    let history = 500_000u64;
    let clock = SimClock::new(0);
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), clock.shared());
    cluster
        .create_topic("events", TopicConfig::with_partitions(1))
        .unwrap();
    let tp = TopicPartition::new("events", 0);
    let factory = || {
        |_: u32| -> Box<dyn liquid_processing::StreamTask> {
            Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                let key = m.key.clone().unwrap_or_default();
                ctx.store().add_counter(&key, 1)?;
                Ok(())
            }))
        }
    };
    let t = Instant::now();
    for i in 0..history {
        cluster
            .produce_to(
                &tp,
                Some(Bytes::from(format!("k{}", i % 50))),
                Bytes::from(format!("h{i}")),
                AckLevel::Leader,
            )
            .unwrap();
    }
    println!("produce: {:?}", t.elapsed());
    let t = Instant::now();
    {
        let mut job = Job::new(&cluster, JobConfig::new("stats", &["events"]), factory()).unwrap();
        job.run_until_idle(500).unwrap();
        job.checkpoint().unwrap();
    }
    println!("history job: {:?}", t.elapsed());
    for i in 0..5000u64 {
        cluster
            .produce_to(
                &tp,
                Some(Bytes::from(format!("k{}", i % 50))),
                Bytes::from(format!("d{i}")),
                AckLevel::Leader,
            )
            .unwrap();
    }
    let t = Instant::now();
    cluster.compact_topic("__stats-state").unwrap();
    println!("compact: {:?}", t.elapsed());
    let t = Instant::now();
    let mut inc = Job::new(&cluster, JobConfig::new("stats", &["events"]), factory()).unwrap();
    println!(
        "Job::new (restore {} records): {:?}",
        inc.restored_records(),
        t.elapsed()
    );
    let t = Instant::now();
    let n = inc.run_until_idle(500).unwrap();
    println!("process {n}: {:?}", t.elapsed());
    let t = Instant::now();
    inc.checkpoint().unwrap();
    println!("checkpoint: {:?}", t.elapsed());
}
