//! E1 — Figure 1 / §1–§2: end-to-end pipeline latency, MR/DFS baseline
//! vs Liquid, as pipeline length grows.
//!
//! The paper's limitation 1: "Intermediate results of MR jobs are
//! written to the DFS, resulting in higher latencies as job pipelines
//! grow in length." We run the same K-stage identity/enrich ETL chain
//! (K = 1..5) over 10,000 events through (a) the MR/DFS stack with its
//! per-task startup and DFS I/O costs, and (b) Liquid's log-based
//! dataflow, and report simulated end-to-end latency per stage count.
//!
//! Expected shape: MR latency grows by seconds per stage (task startup
//! dominates); Liquid stays in the sub-second range regardless of
//! pipeline length — the nearline-vs-batch gap.

use liquid::prelude::*;
use liquid_bench::report::{fmt_ns, table_header, table_row};
use liquid_dfs::{Dfs, DfsConfig};
use liquid_mr::{identity_map, identity_reduce, MrJobConfig, MrPipeline};
use liquid_sim::disk::DiskModel;
use liquid_sim::pagecache::{PageCache, PageCacheConfig};

const EVENTS: usize = 10_000;
const MAX_STAGES: usize = 5;

fn mr_pipeline_latency(stages: usize) -> u64 {
    let dfs = Dfs::new(DfsConfig {
        replication: 1,
        datanodes: 1,
        ..DfsConfig::default()
    });
    let content: String = (0..EVENTS).map(|i| format!("k{i}\tevent-{i}\n")).collect();
    dfs.write("/stage0/events", content.as_bytes()).unwrap();
    let mut pipeline = MrPipeline::new(&dfs);
    for s in 0..stages {
        pipeline.add_stage(
            MrJobConfig::new(
                &format!("etl-{s}"),
                &format!("/stage{s}/"),
                &format!("/stage{}", s + 1),
            )
            .reducers(2),
        );
    }
    let stats = pipeline.run(&identity_map, &identity_reduce).unwrap();
    stats.iter().map(|s| s.simulated_ns).sum()
}

fn liquid_pipeline_latency(stages: usize) -> u64 {
    // The Liquid path: each stage reads its input feed from the page
    // cache (hot head of the log) and appends to the next. Latency is
    // the simulated I/O cost accumulated by the page-cache model plus
    // nothing else — there are no per-stage task launches.
    let clock = SimClock::new(0);
    let cache = std::sync::Arc::new(liquid_sim::lockdep::Mutex::new(
        "log.pagecache",
        PageCache::new(
            PageCacheConfig {
                capacity_pages: 1 << 16,
                disk: DiskModel::default(),
                ..PageCacheConfig::default()
            },
            clock.shared(),
        ),
    ));
    // One log per stage boundary, all charged through the same cache.
    let mut logs: Vec<liquid::log::Log> = (0..=stages)
        .map(|i| {
            let mut log = liquid::log::Log::in_memory(clock.shared());
            log.attach_cache(cache.clone(), i as u64 + 1);
            log
        })
        .collect();
    for i in 0..EVENTS {
        logs[0]
            .append(None, Bytes::from(format!("event-{i}")))
            .unwrap();
    }
    let mut cost = 0;
    for s in 0..stages {
        let mut offset = 0;
        loop {
            let (records, read_cost) = {
                let src = &logs[s];
                let out = src.read(offset, 256 * 1024).unwrap();
                (out.records, out.simulated_cost_ns)
            };
            cost += read_cost;
            if records.is_empty() {
                break;
            }
            for rec in records {
                offset = rec.offset + 1;
                logs[s + 1].append(rec.key, rec.value).unwrap();
            }
        }
    }
    cost
}

fn main() {
    println!("# E1: pipeline end-to-end latency vs stage count ({EVENTS} events)");
    table_header(&["stages", "MR/DFS", "Liquid", "MR/Liquid ratio"]);
    let obs = liquid_obs::Obs::default();
    for stages in 1..=MAX_STAGES {
        let mr = mr_pipeline_latency(stages);
        let lq = liquid_pipeline_latency(stages);
        let reg = obs.registry();
        let label = [("stages", format!("{stages}"))];
        let labels: Vec<(&str, &str)> = label.iter().map(|(k, v)| (*k, v.as_str())).collect();
        reg.gauge_with("bench.mr_latency_ns", &labels).set(mr);
        reg.gauge_with("bench.liquid_latency_ns", &labels).set(lq);
        table_row(&[
            stages.to_string(),
            fmt_ns(mr),
            fmt_ns(lq),
            format!("{:.0}x", mr as f64 / lq.max(1) as f64),
        ]);
    }
    println!();
    println!(
        "paper claim: DFS-based stacks have high per-stage overhead; Liquid keeps\n\
         latency low and roughly flat as stages are added (nearline default)."
    );
    liquid_bench::report::write_bench("e1", &obs.snapshot());
}
