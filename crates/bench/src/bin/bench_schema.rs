//! Validates `BENCH_*.json` files against the shared schema: a JSON
//! object `{"experiment": <string>, "snapshot": <registry snapshot>}`.
//!
//! Usage: `bench_schema FILE...` — exits nonzero naming the first file
//! that fails. CI's bench-smoke job runs this over the artifacts the
//! experiment binaries wrote.

use liquid_bench::report::check_bench_schema;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: bench_schema FILE...");
        std::process::exit(2);
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: unreadable: {e}");
                std::process::exit(1);
            }
        };
        match check_bench_schema(&text) {
            Ok(experiment) => println!("{file}: ok (experiment {experiment})"),
            Err(why) => {
                eprintln!("{file}: schema violation: {why}");
                std::process::exit(1);
            }
        }
    }
}
