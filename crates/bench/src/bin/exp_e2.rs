//! E2 — §4.1: "read/write throughput remains constant independent of
//! log size."
//!
//! Appends batches into logs of increasing size and measures (a) append
//! throughput and (b) tail-read throughput at each size. The append-only
//! design means neither degrades as the log grows — unlike structures
//! with in-place updates whose cost grows with data volume.

use std::time::Instant;

use bytes::Bytes;
use liquid::log::{Log, LogConfig};
use liquid_bench::report::{table_header, table_row, write_bench};
use liquid_obs::Obs;
use liquid_sim::clock::SimClock;

const BATCH: u64 = 20_000;
const PAYLOAD: usize = 100;

fn main() {
    println!("# E2: log throughput vs log size (batch = {BATCH} msgs of {PAYLOAD}B)");
    table_header(&[
        "log size (msgs)",
        "append Kmsg/s",
        "tail-read Kmsg/s",
        "segments",
    ]);
    let obs = Obs::default();
    let clock = SimClock::new(0);
    let mut log = Log::open(
        LogConfig {
            segment_bytes: 4 << 20,
            obs: obs.clone(),
            ..LogConfig::default()
        },
        clock.shared(),
    )
    .unwrap();
    let payload = vec![b'x'; PAYLOAD];
    let mut size = 0u64;
    for _ in 0..6 {
        // Grow the log by several batches (unmeasured filler), then
        // measure one batch of appends and one tail read.
        for _ in 0..4 * BATCH {
            log.append(None, Bytes::copy_from_slice(&payload)).unwrap();
        }
        size += 4 * BATCH;

        let t = Instant::now();
        for _ in 0..BATCH {
            log.append(None, Bytes::copy_from_slice(&payload)).unwrap();
        }
        let append_s = t.elapsed().as_secs_f64();
        size += BATCH;

        let tail_start = log.next_offset() - BATCH;
        let t = Instant::now();
        let got = log.read(tail_start, u64::MAX).unwrap().records.len() as u64;
        let read_s = t.elapsed().as_secs_f64();
        assert_eq!(got, BATCH);

        table_row(&[
            size.to_string(),
            format!("{:.0}", BATCH as f64 / append_s / 1_000.0),
            format!("{:.0}", BATCH as f64 / read_s / 1_000.0),
            log.segment_count().to_string(),
        ]);
    }
    println!();
    println!(
        "paper claim: append-only design => throughput constant independent of\n\
         log size, enabling cost-effective weeks-to-months retention."
    );
    obs.registry().gauge("bench.final_log_msgs").set(size);
    write_bench("e2", &obs.snapshot());
}
