//! E13 — §2/§3.1 segment storage: hot-vs-cold reads and O(1) retention.
//!
//! Two measurements over the time-partitioned segment store:
//!
//! 1. **Read cache.** A consumer sweeping a feed of sealed segments
//!    pays the storage decode exactly once: the first (cold) sweep
//!    fills the sharded segment-read cache, every later (hot) sweep is
//!    served as zero-copy slices of the cached record vectors. The
//!    acceptance bar is a ≥5× throughput multiple of hot over cold —
//!    the margin that lets nearline consumers re-read recent history
//!    (rewinds, catch-ups, new subscribers) without touching storage.
//!
//! 2. **Retention.** Enforcing the retention policy drops whole
//!    retired segments from the front — one O(1) unlink each, never a
//!    record rewrite — so a pass over hundreds of retired segments
//!    completes in microseconds per segment regardless of how many
//!    records each one holds.
//!
//! `E13_MESSAGES` overrides the message count (CI smoke runs use a
//! small value; the hot/cold assertion holds at any size because the
//! hot path skips the decode entirely, not just amortizes it).

use std::time::Instant;

use liquid_bench::report::{table_header, table_row};
use liquid_log::RetentionPolicy;
use liquid_messaging::{Cluster, ClusterConfig, Producer, TopicConfig, TopicPartition};
use liquid_sim::clock::SimClock;

const SWEEP_CHUNK: u64 = 256 * 1024;
const HOT_SWEEPS: u32 = 4;

fn messages() -> u64 {
    std::env::var("E13_MESSAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000)
}

/// One broker, replication 1: follower catch-up reads would warm the
/// leader's read cache before the cold sweep and poison the baseline.
fn setup(obs: &liquid_obs::Obs) -> Cluster {
    let clock = SimClock::new(0);
    let config = ClusterConfig::builder()
        .brokers(1)
        .segment_cache_bytes(64 * 1024 * 1024)
        .segment_cache_shards(8)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let cluster = Cluster::new(config, clock.shared());
    cluster
        .create_topic(
            "t",
            TopicConfig::with_partitions(1).segment_bytes(64 * 1024),
        )
        .unwrap();
    cluster
}

/// Sweeps the whole feed in `SWEEP_CHUNK`-byte fetches; returns
/// (records, seconds).
fn sweep(cluster: &Cluster, tp: &TopicPartition) -> (u64, f64) {
    let end = cluster.latest_offset(tp).unwrap();
    let t = Instant::now();
    let mut total = 0u64;
    let mut pos = cluster.earliest_offset(tp).unwrap();
    while pos < end {
        let batch = cluster.fetch_batch(tp, pos, SWEEP_CHUNK).unwrap();
        if batch.is_empty() {
            break;
        }
        total += batch.len() as u64;
        pos = batch.end_offset();
    }
    (total, t.elapsed().as_secs_f64())
}

fn main() {
    let n = messages();
    println!("# E13: segment read cache + O(1) retention ({n} msgs)");

    let obs = liquid_obs::Obs::default();
    let reg = obs.registry();

    // --- Part 1: hot vs cold read throughput -------------------------
    let cluster = setup(&obs);
    let tp = TopicPartition::new("t", 0);
    let producer = Producer::new(&cluster, "t").unwrap();
    for i in 0..n {
        producer
            .send(None, bytes::Bytes::from(format!("m{i:08}")))
            .unwrap();
    }
    let before = obs.snapshot();

    let (cold_total, cold_secs) = sweep(&cluster, &tp);
    assert_eq!(cold_total, n, "cold sweep must deliver every record");
    let mut hot_secs = f64::MAX;
    for _ in 0..HOT_SWEEPS {
        let (hot_total, secs) = sweep(&cluster, &tp);
        assert_eq!(hot_total, n, "hot sweep must deliver every record");
        hot_secs = hot_secs.min(secs);
    }
    let after = obs.snapshot();
    let misses = after.counter("log.cache.miss") - before.counter("log.cache.miss");
    let hits = after.counter("log.cache.hit") - before.counter("log.cache.hit");
    assert!(misses > 0, "the cold sweep must fill the cache");
    assert!(hits > misses, "hot sweeps must be served from the cache");

    let cold_kmsg = cold_total as f64 / cold_secs / 1_000.0;
    let hot_kmsg = n as f64 / hot_secs / 1_000.0;
    let multiple = hot_kmsg / cold_kmsg;
    println!("\nsweep throughput (sealed segments, {SWEEP_CHUNK}-byte fetches):");
    table_header(&["path", "Kmsg/s", "cache"]);
    table_row(&[
        "cold (storage decode)".into(),
        format!("{cold_kmsg:.0}"),
        format!("{misses} misses"),
    ]);
    table_row(&[
        "hot (zero-copy cache)".into(),
        format!("{hot_kmsg:.0}"),
        format!("{hits} hits"),
    ]);
    println!("hot/cold multiple: {multiple:.1}x");
    reg.gauge("bench.read_cold_kmsg_per_s")
        .set(cold_kmsg as u64);
    reg.gauge("bench.read_hot_kmsg_per_s").set(hot_kmsg as u64);
    reg.gauge("bench.read_hot_over_cold_x10")
        .set((multiple * 10.0) as u64);
    assert!(
        multiple >= 5.0,
        "hot reads must be at least 5x cold reads, got {multiple:.1}x"
    );

    // --- Part 2: O(1) whole-segment retention ------------------------
    let clock = SimClock::new(0);
    let config = ClusterConfig::builder()
        .brokers(1)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let retained = Cluster::new(config, clock.shared());
    retained
        .create_topic(
            "r",
            TopicConfig::with_partitions(1)
                .retention(RetentionPolicy::DropByBytes {
                    max_bytes: 64 * 1024,
                })
                .segment_bytes(4 * 1024),
        )
        .unwrap();
    let rtp = TopicPartition::new("r", 0);
    let producer = Producer::new(&retained, "r").unwrap();
    for i in 0..n {
        producer
            .send(None, bytes::Bytes::from(format!("r{i:08}")))
            .unwrap();
    }
    let floor_before = retained.earliest_offset(&rtp).unwrap();
    let t = Instant::now();
    retained.enforce_retention().unwrap();
    let pass_us = t.elapsed().as_secs_f64() * 1e6;
    let floor_after = retained.earliest_offset(&rtp).unwrap();
    let dropped = obs.snapshot().counter("log.segment-drop");
    assert!(
        floor_after > floor_before,
        "the pass must drop retired segments"
    );

    println!("\nretention pass (whole-segment drops, never a rewrite):");
    table_header(&["dropped segments", "records retired", "pass", "per segment"]);
    table_row(&[
        dropped.to_string(),
        (floor_after - floor_before).to_string(),
        format!("{pass_us:.0}us"),
        format!("{:.1}us", pass_us / dropped.max(1) as f64),
    ]);
    reg.gauge("bench.retention_pass_us").set(pass_us as u64);
    reg.gauge("bench.retention_dropped_segments").set(dropped);
    reg.gauge("bench.retention_us_per_segment")
        .set((pass_us / dropped.max(1) as f64) as u64);

    println!();
    println!(
        "paper claim: source-of-truth feeds keep a sliding window of\n\
         history cheaply — expiry unlinks whole time-partitioned\n\
         segments in O(1), and recent history is re-readable at memory\n\
         speed through the segment-read cache."
    );
    liquid_bench::report::write_bench("e13", &obs.snapshot());
}
