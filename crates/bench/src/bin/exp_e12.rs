//! E12 — §3.1 throughput: the batched zero-copy produce/fetch hot path.
//!
//! Sweeps producer batch size × acknowledgement mode and measures
//! produce throughput end-to-end through the real stack (2 brokers,
//! replication 2, 8 partitions). `batch=1` is the unbatched seed path
//! (`Producer::send`, one lock acquisition and one log append per
//! message); larger sizes accumulate into a [`BatchConfig`]-driven
//! arena and group-commit whole [`RecordBatch`]es — one lock, one
//! `log.append-batch` decision point, and (at `acks=all`) one
//! replication fetch per follower per *batch* instead of per message.
//!
//! The paper's claim this regenerates: amortizing commit overhead over
//! batched records is what lets the nearline pipeline absorb full
//! production firehoses. The acceptance bar for this experiment is a
//! ≥5× produce-throughput multiple over the unbatched baseline at
//! batch sizes ≥256.
//!
//! A second, concurrent sweep runs one producer thread per partition
//! (`Partitioner::Manual`), which is where the granularity of the
//! cluster write lock shows up: under a single coarse `cluster.state`
//! write lock the eight producers serialize; with the per-partition
//! `partition.state` shards (see `target/analysis/shardability.json`)
//! they only contend on the brief metadata read.
//!
//! `E12_MESSAGES` overrides the per-configuration message count (CI
//! smoke runs use a small value).

use std::time::Instant;

use liquid_bench::report::{table_header, table_row};
use liquid_messaging::{
    AckLevel, BatchConfig, Cluster, ClusterConfig, Partitioner, Producer, TopicConfig,
    TopicPartition,
};
use liquid_sim::clock::SimClock;

const PARTITIONS: u32 = 8;
const BATCH_SIZES: &[usize] = &[1, 64, 256, 1024];
const CONCURRENT_BATCH_SIZES: &[usize] = &[1, 64, 256];

fn messages() -> u64 {
    std::env::var("E12_MESSAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(80_000)
}

fn setup(obs: &liquid_obs::Obs) -> Cluster {
    let clock = SimClock::new(0);
    let config = ClusterConfig::builder()
        .brokers(2)
        .obs(obs.clone())
        .build()
        .expect("valid cluster config");
    let cluster = Cluster::new(config, clock.shared());
    cluster
        .create_topic("t", TopicConfig::with_partitions(PARTITIONS).replication(2))
        .unwrap();
    cluster
}

/// Produces `n` messages at the given batch size; returns seconds.
fn produce(cluster: &Cluster, batch: usize, acks: AckLevel, n: u64) -> f64 {
    let producer = Producer::new(cluster, "t").unwrap().with_acks(acks);
    let producer = if batch > 1 {
        producer.with_batching(BatchConfig {
            max_records: batch,
            max_bytes: usize::MAX,
            linger_ms: 0,
        })
    } else {
        producer
    };
    let t = Instant::now();
    if batch > 1 {
        for i in 0..n {
            producer.buffer_value(format!("m{i:08}")).unwrap();
        }
        producer.flush().unwrap();
    } else {
        for i in 0..n {
            producer
                .send(None, bytes::Bytes::from(format!("m{i:08}")))
                .unwrap();
        }
    }
    t.elapsed().as_secs_f64()
}

/// Produces `per` messages from each of [`PARTITIONS`] producer
/// threads, every thread pinned to its own partition; returns seconds.
fn produce_concurrent(cluster: &Cluster, batch: usize, acks: AckLevel, per: u64) -> f64 {
    let t = Instant::now();
    let handles: Vec<_> = (0..PARTITIONS)
        .map(|p| {
            let cluster = cluster.clone();
            liquid_sim::thread::spawn_named(format!("producer-{p}"), move || {
                let producer = Producer::new(&cluster, "t")
                    .unwrap()
                    .with_acks(acks)
                    .with_partitioner(Partitioner::Manual(p));
                if batch > 1 {
                    let producer = producer.with_batching(BatchConfig {
                        max_records: batch,
                        max_bytes: usize::MAX,
                        linger_ms: 0,
                    });
                    for i in 0..per {
                        producer.buffer_value(format!("m{p:02}-{i:08}")).unwrap();
                    }
                    producer.flush().unwrap();
                } else {
                    for i in 0..per {
                        producer
                            .send(None, bytes::Bytes::from(format!("m{p:02}-{i:08}")))
                            .unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    t.elapsed().as_secs_f64()
}

fn ack_label(acks: AckLevel) -> &'static str {
    match acks {
        AckLevel::None => "none",
        AckLevel::Leader => "leader",
        AckLevel::All => "all",
    }
}

fn main() {
    let n = messages();
    println!(
        "# E12: batched produce hot path — batch size × ack mode \
         ({n} msgs/config, {PARTITIONS} partitions, replication 2)"
    );

    let obs = liquid_obs::Obs::default();
    let reg = obs.registry();

    for acks in [AckLevel::None, AckLevel::Leader, AckLevel::All] {
        println!("\nacks={}:", ack_label(acks));
        table_header(&["batch", "Kmsg/s", "speedup vs batch=1", "delivered"]);
        let mut baseline = 0.0f64;
        for &batch in BATCH_SIZES {
            let cluster = setup(&obs);
            let secs = produce(&cluster, batch, acks, n);
            cluster.replicate_tick().unwrap();
            // Every produced record must be committed and readable —
            // throughput that loses data doesn't count.
            let mut delivered = 0u64;
            for p in 0..PARTITIONS {
                let tp = TopicPartition::new("t", p);
                delivered += cluster
                    .fetch_batch(&tp, 0, u64::MAX)
                    .unwrap()
                    .into_messages()
                    .len() as u64;
            }
            assert_eq!(delivered, n, "batch={batch} acks={}", ack_label(acks));
            let kmsg = n as f64 / secs / 1_000.0;
            if batch == 1 {
                baseline = kmsg;
            }
            let batch_label = batch.to_string();
            let labels = [("acks", ack_label(acks)), ("batch", batch_label.as_str())];
            reg.gauge_with("bench.produce_kmsg_per_s", &labels)
                .set(kmsg as u64);
            reg.gauge_with("bench.produce_speedup_x10", &labels)
                .set((kmsg / baseline * 10.0) as u64);
            table_row(&[
                batch.to_string(),
                format!("{kmsg:.0}"),
                format!("{:.1}x", kmsg / baseline),
                delivered.to_string(),
            ]);
        }
    }

    // Concurrent sweep: one producer thread per partition. `acks=all`
    // is excluded — its cost is replication fetches, not lock
    // contention, and the single-threaded sweep above already covers it.
    for acks in [AckLevel::None, AckLevel::Leader] {
        println!(
            "\nacks={} mode=concurrent ({PARTITIONS} producer threads):",
            ack_label(acks)
        );
        table_header(&["batch", "Kmsg/s", "delivered"]);
        for &batch in CONCURRENT_BATCH_SIZES {
            let per = n / u64::from(PARTITIONS);
            let total = per * u64::from(PARTITIONS);
            let cluster = setup(&obs);
            let secs = produce_concurrent(&cluster, batch, acks, per);
            cluster.replicate_tick().unwrap();
            let mut delivered = 0u64;
            for p in 0..PARTITIONS {
                let tp = TopicPartition::new("t", p);
                delivered += cluster
                    .fetch_batch(&tp, 0, u64::MAX)
                    .unwrap()
                    .into_messages()
                    .len() as u64;
            }
            assert_eq!(
                delivered,
                total,
                "concurrent batch={batch} acks={}",
                ack_label(acks)
            );
            let kmsg = total as f64 / secs / 1_000.0;
            let batch_label = batch.to_string();
            let labels = [
                ("acks", ack_label(acks)),
                ("batch", batch_label.as_str()),
                ("mode", "concurrent"),
            ];
            reg.gauge_with("bench.produce_kmsg_per_s", &labels)
                .set(kmsg as u64);
            table_row(&[
                batch.to_string(),
                format!("{kmsg:.0}"),
                delivered.to_string(),
            ]);
        }
    }

    println!();
    println!(
        "paper claim: batching is the messaging layer's throughput lever —\n\
         group-committing whole record batches amortizes the per-message\n\
         lock, append and replication cost, multiplying produce throughput\n\
         while preserving offset and acknowledgement semantics exactly."
    );
    liquid_bench::report::write_bench("e12", &obs.snapshot());
}
