//! Observability overhead on the produce hot path.
//!
//! Run twice and compare:
//!
//! ```text
//! cargo bench -p liquid-bench --bench obs_overhead
//! cargo bench -p liquid-bench --bench obs_overhead --features obs-off
//! ```
//!
//! The instrumented path (counter bumps, gauge publishes, span mint +
//! ring-buffer record per produce) must stay within 5% of the
//! compiled-out path.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use liquid_messaging::{AckLevel, Cluster, ClusterConfig, TopicConfig, TopicPartition};
use liquid_sim::clock::SimClock;

fn produce_path(c: &mut Criterion) {
    let mode = if cfg!(feature = "obs-off") {
        "obs_off"
    } else {
        "obs_on"
    };
    let mut group = c.benchmark_group(format!("obs_overhead_{mode}"));
    group.throughput(Throughput::Elements(1));
    group.bench_function("produce_leader_rf1", |b| {
        let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        cluster
            .create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        b.iter(|| {
            cluster
                .produce_to(
                    &tp,
                    None,
                    Bytes::from_static(b"payload-0123456789"),
                    AckLevel::Leader,
                )
                .unwrap()
        });
    });
    group.bench_function("produce_all_rf3", |b| {
        let cluster = Cluster::new(ClusterConfig::with_brokers(3), SimClock::new(0).shared());
        cluster
            .create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        b.iter(|| {
            cluster
                .produce_to(
                    &tp,
                    None,
                    Bytes::from_static(b"payload-0123456789"),
                    AckLevel::All,
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, produce_path);
criterion_main!(benches);
