//! Observability overhead on the produce hot path.
//!
//! Run twice and compare:
//!
//! ```text
//! cargo bench -p liquid-bench --bench obs_overhead
//! cargo bench -p liquid-bench --bench obs_overhead --features obs-off
//! ```
//!
//! The instrumented path (counter bumps, gauge publishes, span mint +
//! ring-buffer record per produce) must stay within 5% of the
//! compiled-out path.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use liquid_log::RecordBatch;
use liquid_messaging::{AckLevel, Cluster, ClusterConfig, TopicConfig, TopicPartition};
use liquid_sim::clock::SimClock;

/// Copy-budget gate, enforced on every bench run before timing starts:
/// the produce→fetch round trip must not deep-copy payload bytes per
/// record. Witness: `Record::decode` hands out slices of the storage
/// chunk, so a record's key and value are *contiguous* in one backing
/// buffer (the wire frame packs them back to back). A regression that
/// reintroduces per-field copies (`to_vec`, `Bytes::copy_from_slice`)
/// lands them in separate allocations and trips this before any
/// numbers are reported.
fn assert_fetch_copy_budget() {
    let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
    cluster
        .create_topic("copy-budget", TopicConfig::with_partitions(1))
        .unwrap();
    let tp = TopicPartition::new("copy-budget", 0);
    let mut b = RecordBatch::builder();
    for i in 0..64u32 {
        b.push(
            Some(format!("key-{i:04}").as_bytes()),
            format!("value-{i:04}-0123456789").as_bytes(),
            0,
        );
    }
    cluster
        .produce_batch(&tp, b.build(), AckLevel::Leader, None)
        .unwrap();
    let batch = cluster.fetch_batch(&tp, 0, u64::MAX).unwrap();
    assert_eq!(batch.len(), 64, "whole batch must come back");
    for rec in batch.records() {
        let key = rec.key.as_ref().expect("all records are keyed");
        let kp = key.as_slice().as_ptr() as usize;
        let vp = rec.value.as_slice().as_ptr() as usize;
        assert_eq!(
            kp + key.len(),
            vp,
            "fetched key and value must be adjacent slices of one storage \
             chunk — a per-record deep copy crept back into the fetch path"
        );
    }
}

fn produce_path(c: &mut Criterion) {
    assert_fetch_copy_budget();
    let mode = if cfg!(feature = "obs-off") {
        "obs_off"
    } else {
        "obs_on"
    };
    let mut group = c.benchmark_group(format!("obs_overhead_{mode}"));
    group.throughput(Throughput::Elements(1));
    group.bench_function("produce_leader_rf1", |b| {
        let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        cluster
            .create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        b.iter(|| {
            cluster
                .produce_to(
                    &tp,
                    None,
                    Bytes::from_static(b"payload-0123456789"),
                    AckLevel::Leader,
                )
                .unwrap()
        });
    });
    group.bench_function("produce_all_rf3", |b| {
        let cluster = Cluster::new(ClusterConfig::with_brokers(3), SimClock::new(0).shared());
        cluster
            .create_topic("t", TopicConfig::with_partitions(1).replication(3))
            .unwrap();
        let tp = TopicPartition::new("t", 0);
        b.iter(|| {
            cluster
                .produce_to(
                    &tp,
                    None,
                    Bytes::from_static(b"payload-0123456789"),
                    AckLevel::All,
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, produce_path);
criterion_main!(benches);
