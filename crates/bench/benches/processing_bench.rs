//! Criterion microbenchmarks for the processing layer: job throughput
//! (E1/E5 companions), state-store and window costs, and changelog
//! restore (E4 companion).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use liquid_messaging::{AckLevel, Cluster, ClusterConfig, Message, TopicConfig, TopicPartition};
use liquid_processing::window::TumblingWindow;
use liquid_processing::{FnTask, Job, JobConfig, StateStore, TaskContext};
use liquid_sim::clock::SimClock;

fn cluster_with(topic: &str, partitions: u32, messages: u64) -> Cluster {
    let c = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
    c.create_topic(topic, TopicConfig::with_partitions(partitions))
        .unwrap();
    for p in 0..partitions {
        let tp = TopicPartition::new(topic, p);
        for i in 0..messages {
            c.produce_to(
                &tp,
                Some(Bytes::from(format!("k{}", i % 64))),
                Bytes::from(format!("value-{i:040}")),
                AckLevel::Leader,
            )
            .unwrap();
        }
    }
    c
}

/// Stateless forwarding throughput (the E1 per-stage cost).
fn stateless_job_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("job_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("stateless_10k", |b| {
        b.iter_batched(
            || {
                let cluster = cluster_with("in", 1, 10_000);
                cluster
                    .create_topic("out", TopicConfig::with_partitions(1))
                    .unwrap();
                Job::new(&cluster, JobConfig::new("fwd", &["in"]).stateless(), |_| {
                    Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                        ctx.send("out", m.key.clone(), m.value.clone())?;
                        Ok(())
                    }))
                })
                .unwrap()
            },
            |mut job| job.run_until_idle(10).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("stateful_counter_10k", |b| {
        b.iter_batched(
            || {
                let cluster = cluster_with("in", 1, 10_000);
                Job::new(&cluster, JobConfig::new("count", &["in"]), |_| {
                    Box::new(FnTask(|m: &Message, ctx: &mut TaskContext<'_>| {
                        let key = m.key.clone().unwrap_or_default();
                        ctx.store().add_counter(&key, 1)?;
                        Ok(())
                    }))
                })
                .unwrap()
            },
            |mut job| job.run_until_idle(10).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// State-store operations with and without a changelog.
fn state_store_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_store");
    group.throughput(Throughput::Elements(1));
    group.bench_function("put_ephemeral", |b| {
        let mut store = StateStore::ephemeral();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store
                .put(format!("key-{}", i % 1_000), format!("value-{i}"))
                .unwrap()
        });
    });
    group.bench_function("put_with_changelog", |b| {
        let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
        cluster
            .create_topic("cl", TopicConfig::with_partitions(1).compacted())
            .unwrap();
        let mut store = StateStore::with_changelog(cluster, TopicPartition::new("cl", 0)).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store
                .put(format!("key-{}", i % 1_000), format!("value-{i}"))
                .unwrap()
        });
    });
    group.bench_function("get_hot", |b| {
        let mut store = StateStore::ephemeral();
        for i in 0..10_000u64 {
            store.put(format!("key-{i}"), format!("value-{i}")).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 31 + 7) % 10_000;
            store.get(format!("key-{i}").as_bytes())
        });
    });
    group.finish();
}

/// E4 companion: changelog restore cost, compacted vs not.
fn changelog_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_changelog_restore");
    group.sample_size(10);
    for compacted in [false, true] {
        let name = if compacted { "compacted" } else { "raw" };
        group.bench_function(name, |b| {
            let cluster = Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
            cluster
                .create_topic(
                    "cl",
                    TopicConfig::with_partitions(1)
                        .compacted()
                        .segment_bytes(64 * 1024),
                )
                .unwrap();
            let tp = TopicPartition::new("cl", 0);
            for i in 0..20_000u64 {
                cluster
                    .produce_to(
                        &tp,
                        Some(Bytes::from(format!("k{}", i % 200))),
                        Bytes::from(format!("v{i:040}")),
                        AckLevel::Leader,
                    )
                    .unwrap();
            }
            if compacted {
                cluster.compact_topic("cl").unwrap();
            }
            b.iter(|| {
                let mut store = StateStore::with_changelog(cluster.clone(), tp.clone()).unwrap();
                store.restore_from_changelog().unwrap()
            });
        });
    }
    group.finish();
}

/// Window add/close costs.
fn window_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("windows");
    group.bench_function("tumbling_add", |b| {
        let w = TumblingWindow::new(1_000);
        let mut store = StateStore::ephemeral();
        let mut ts = 0u64;
        b.iter(|| {
            ts += 13;
            w.add(&mut store, ts, b"cdn-a", 1).unwrap()
        });
    });
    group.bench_with_input(
        BenchmarkId::new("close_ready", "1k_open_windows"),
        &(),
        |b, _| {
            b.iter_batched(
                || {
                    let w = TumblingWindow::new(100);
                    let mut store = StateStore::ephemeral();
                    for ts in 0..100_000u64 {
                        if ts % 100 == 0 {
                            w.add(&mut store, ts, b"k", 1).unwrap();
                        }
                    }
                    (w, store)
                },
                |(w, mut store)| w.close_ready(&mut store).unwrap().len(),
                criterion::BatchSize::LargeInput,
            );
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    stateless_job_throughput,
    state_store_ops,
    changelog_restore,
    window_ops
);
criterion_main!(benches);
