//! Criterion companion to E1 (Figure 1): real wall-clock cost of one
//! pipeline round, MR/DFS baseline vs Liquid job chain, at 3 stages.
//! (The simulated-latency sweep across stage counts is in
//! `src/bin/exp_e1.rs`; this measures the actual execution cost of the
//! two code paths on identical data.)

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use liquid_dfs::{Dfs, DfsConfig};
use liquid_messaging::{AckLevel, Cluster, ClusterConfig, Message, TopicConfig, TopicPartition};
use liquid_mr::{identity_map, identity_reduce, MrJobConfig, MrPipeline};
use liquid_processing::{FnTask, Job, JobConfig, Pipeline, TaskContext};
use liquid_sim::clock::SimClock;

const EVENTS: usize = 2_000;
const STAGES: usize = 3;

fn bench_mr(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_three_stage_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.bench_function("mr_dfs_baseline", |b| {
        b.iter_batched(
            || {
                let dfs = Dfs::new(DfsConfig {
                    replication: 1,
                    datanodes: 1,
                    ..DfsConfig::default()
                });
                let content: String = (0..EVENTS).map(|i| format!("k{i}\te{i}\n")).collect();
                dfs.write("/stage0/in", content.as_bytes()).unwrap();
                dfs
            },
            |dfs| {
                let mut p = MrPipeline::new(&dfs);
                for s in 0..STAGES {
                    p.add_stage(
                        MrJobConfig::new(
                            &format!("s{s}"),
                            &format!("/stage{s}/"),
                            &format!("/stage{}", s + 1),
                        )
                        .reducers(1)
                        .task_startup_ns(0), // wall-clock only
                    );
                }
                p.run(&identity_map, &identity_reduce).unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.bench_function("liquid_jobs", |b| {
        b.iter_batched(
            || {
                let cluster =
                    Cluster::new(ClusterConfig::with_brokers(1), SimClock::new(0).shared());
                for s in 0..=STAGES {
                    cluster
                        .create_topic(&format!("s{s}"), TopicConfig::with_partitions(1))
                        .unwrap();
                }
                let tp = TopicPartition::new("s0", 0);
                for i in 0..EVENTS {
                    cluster
                        .produce_to(&tp, None, Bytes::from(format!("e{i}")), AckLevel::Leader)
                        .unwrap();
                }
                let mut pipeline = Pipeline::new();
                for s in 0..STAGES {
                    let out = format!("s{}", s + 1);
                    let job = Job::new(
                        &cluster,
                        JobConfig::new(&format!("j{s}"), &[&format!("s{s}")]).stateless(),
                        move |_| {
                            let out = out.clone();
                            Box::new(FnTask(move |m: &Message, ctx: &mut TaskContext<'_>| {
                                ctx.send(&out, None, m.value.clone())?;
                                Ok(())
                            }))
                        },
                    )
                    .unwrap();
                    pipeline.add_stage(&format!("j{s}"), job);
                }
                pipeline
            },
            |mut pipeline| pipeline.run_until_idle(20).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_mr);
criterion_main!(benches);
