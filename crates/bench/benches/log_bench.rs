//! Criterion microbenchmarks for the commit log: the E2 throughput
//! claim plus the sparse-index granularity ablation from DESIGN.md §5.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use liquid_log::{Log, LogConfig};
use liquid_sim::clock::SimClock;

fn filled_log(n: u64, index_interval: u64) -> Log {
    let mut log = Log::open(
        LogConfig {
            segment_bytes: 4 << 20,
            index_interval_bytes: index_interval,
            ..LogConfig::default()
        },
        SimClock::new(0).shared(),
    )
    .unwrap();
    for i in 0..n {
        log.append(None, Bytes::from(format!("payload-{i:060}")))
            .unwrap();
    }
    log
}

/// E2: append throughput must not depend on existing log size.
fn append_vs_log_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_append_vs_log_size");
    group.sample_size(30);
    for size in [0u64, 100_000, 400_000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut log = filled_log(size, 4096);
            b.iter(|| {
                log.append(None, Bytes::from_static(b"bench-payload-0123456789"))
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// E2: tail reads must not depend on log size.
fn tail_read_vs_log_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_tail_read_vs_log_size");
    group.sample_size(30);
    for size in [10_000u64, 100_000, 400_000] {
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let log = filled_log(size, 4096);
            let tail = log.next_offset() - 100;
            b.iter(|| log.read(tail, u64::MAX).unwrap().records.len());
        });
    }
    group.finish();
}

/// Ablation: sparse-index granularity vs random-offset read latency.
fn indexed_seek_vs_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_index_interval");
    group.sample_size(30);
    for interval in [512u64, 4_096, 65_536] {
        group.bench_with_input(
            BenchmarkId::from_parameter(interval),
            &interval,
            |b, &interval| {
                let log = filled_log(50_000, interval);
                let mut offset = 7;
                b.iter(|| {
                    offset = (offset * 31 + 17) % 50_000;
                    log.read(offset, 1).unwrap().records.len()
                });
            },
        );
    }
    group.finish();
}

/// E4 companion: compaction pass cost on skewed keyed data.
fn compaction_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_compaction");
    group.sample_size(10);
    group.bench_function("pass_30k_updates_100_keys", |b| {
        b.iter_batched(
            || {
                let mut log = Log::open(
                    LogConfig {
                        segment_bytes: 256 * 1024,
                        retention: liquid_log::RetentionPolicy::Compact {
                            max_age_ms: None,
                            max_bytes: None,
                        },
                        ..LogConfig::default()
                    },
                    SimClock::new(0).shared(),
                )
                .unwrap();
                for i in 0..30_000u64 {
                    log.append(
                        Some(Bytes::from(format!("k{}", i % 100))),
                        Bytes::from(format!("v{i:040}")),
                    )
                    .unwrap();
                }
                log
            },
            |mut log| log.compact().unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    append_vs_log_size,
    tail_read_vs_log_size,
    indexed_seek_vs_interval,
    compaction_pass
);
criterion_main!(benches);
