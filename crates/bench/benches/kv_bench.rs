//! Criterion microbenchmarks for the embedded LSM store (the RocksDB
//! stand-in holding task state, §4.4): write/read paths, bloom-filter
//! effect on misses, and snapshot cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use liquid_kv::{LsmConfig, LsmStore};

fn filled(n: u64) -> LsmStore {
    let mut s = LsmStore::open(LsmConfig {
        memtable_bytes: 256 * 1024,
        ..LsmConfig::default()
    })
    .unwrap();
    for i in 0..n {
        s.put(format!("key-{i:012}"), format!("value-{i:040}"))
            .unwrap();
    }
    s
}

fn writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_write");
    group.throughput(Throughput::Elements(1));
    group.bench_function("put", |b| {
        let mut s = LsmStore::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.put(format!("key-{i:012}"), format!("value-{i:040}"))
                .unwrap()
        });
    });
    group.bench_function("overwrite_hot_keys", |b| {
        let mut s = LsmStore::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.put(format!("key-{:04}", i % 100), format!("value-{i}"))
                .unwrap()
        });
    });
    group.finish();
}

fn reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_read");
    group.throughput(Throughput::Elements(1));
    group.bench_function("get_present", |b| {
        let mut s = filled(100_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 31 + 7) % 100_000;
            s.get(format!("key-{i:012}").as_bytes())
        });
    });
    group.bench_function("get_absent_bloom_skips", |b| {
        let mut s = filled(100_000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s.get(format!("missing-{i}").as_bytes())
        });
    });
    group.bench_function("range_scan_100", |b| {
        let s = filled(100_000);
        b.iter(|| {
            s.range(Some(b"key-000000050000"), Some(b"key-000000050100"))
                .len()
        });
    });
    group.finish();
}

fn snapshots(c: &mut Criterion) {
    c.bench_function("lsm_snapshot_create_and_read", |b| {
        let s = filled(50_000);
        b.iter(|| {
            let snap = s.snapshot();
            snap.get(b"key-000000025000")
        });
    });
}

criterion_group!(benches, writes, reads, snapshots);
criterion_main!(benches);
