//! Criterion microbenchmarks for the messaging layer: the E6 ack-level
//! trade-off on the produce path and fetch/consume costs (E9 companion).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use liquid_messaging::consumer::StartPosition;
use liquid_messaging::{
    AckLevel, AssignmentStrategy, Cluster, ClusterConfig, Consumer, TopicConfig, TopicPartition,
};
use liquid_sim::clock::SimClock;

fn cluster(brokers: u32, replication: u32) -> Cluster {
    let c = Cluster::new(
        ClusterConfig::with_brokers(brokers),
        SimClock::new(0).shared(),
    );
    c.create_topic(
        "t",
        TopicConfig::with_partitions(4).replication(replication),
    )
    .unwrap();
    c
}

/// E6: produce cost per ack level (RF=3).
fn produce_by_ack_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_produce_by_ack_level");
    group.throughput(Throughput::Elements(1));
    for (acks, name) in [
        (AckLevel::None, "acks_none"),
        (AckLevel::Leader, "acks_leader"),
        (AckLevel::All, "acks_all"),
    ] {
        group.bench_function(name, |b| {
            let cluster = cluster(3, 3);
            let tp = TopicPartition::new("t", 0);
            b.iter(|| {
                cluster
                    .produce_to(&tp, None, Bytes::from_static(b"payload-0123456789"), acks)
                    .unwrap()
            });
        });
    }
    group.finish();
}

/// Fetch cost vs batch size.
fn fetch_batches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fetch_batch_bytes");
    group.sample_size(20);
    for max_bytes in [1_024u64, 65_536, 1 << 20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_bytes),
            &max_bytes,
            |b, &max_bytes| {
                let cluster = cluster(1, 1);
                let tp = TopicPartition::new("t", 0);
                for i in 0..50_000u64 {
                    cluster
                        .produce_to(
                            &tp,
                            None,
                            Bytes::from(format!("m{i:050}")),
                            AckLevel::Leader,
                        )
                        .unwrap();
                }
                let mut offset = 0;
                b.iter(|| {
                    let msgs = cluster
                        .fetch_batch(&tp, offset, max_bytes)
                        .unwrap()
                        .into_messages();
                    offset = msgs.last().map(|m| m.offset + 1).unwrap_or(0);
                    msgs.len()
                });
            },
        );
    }
    group.finish();
}

/// E9 companion: group-consumer poll cost as members share partitions.
fn group_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_group_poll");
    group.sample_size(20);
    for members in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(members),
            &members,
            |b, &members| {
                let cluster = cluster(1, 1);
                for p in 0..4u32 {
                    let tp = TopicPartition::new("t", p);
                    for i in 0..10_000u64 {
                        cluster
                            .produce_to(&tp, None, Bytes::from(format!("m{i}")), AckLevel::Leader)
                            .unwrap();
                    }
                }
                let consumers: Vec<Consumer> = (0..members)
                    .map(|m| Consumer::in_group(&cluster, "g", &format!("m{m}")))
                    .collect();
                for consumer in &consumers {
                    consumer
                        .subscribe(&["t"], AssignmentStrategy::Range, StartPosition::Earliest)
                        .unwrap();
                }
                let mut i = 0;
                b.iter(|| {
                    let consumer = &consumers[i % consumers.len()];
                    i += 1;
                    // Re-seek so the poll always has data.
                    for tp in consumer.assignment() {
                        consumer.seek(&tp, 0);
                    }
                    consumer.poll_batches().unwrap().len()
                });
            },
        );
    }
    group.finish();
}

/// Offset-manager commit+fetch cost (§4.2 metadata path).
fn offset_manager_ops(c: &mut Criterion) {
    c.bench_function("offset_manager_commit_fetch", |b| {
        let cluster = cluster(1, 1);
        let tp = TopicPartition::new("t", 0);
        let mut meta = std::collections::BTreeMap::new();
        meta.insert("version".to_string(), "v1".to_string());
        let mut offset = 0u64;
        b.iter(|| {
            offset += 1;
            cluster
                .offsets()
                .commit("g", &tp, offset, meta.clone())
                .unwrap();
            cluster.offsets().fetch_offset("g", &tp)
        });
    });
}

criterion_group!(
    benches,
    produce_by_ack_level,
    fetch_batches,
    group_poll,
    offset_manager_ops
);
criterion_main!(benches);
