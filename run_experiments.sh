#!/usr/bin/env bash
# Regenerates every experiment output in results/ (E1-E10).
# Run on an otherwise idle machine: E2/E5/E6/E9 report wall-clock numbers.
set -euo pipefail
cd "$(dirname "$0")"
cargo build --release -p liquid-bench --bins
mkdir -p results
for e in 1 2 3 4 5 6 7 8 9 10; do
  echo "=== E$e ==="
  ./target/release/exp_e$e | tee "results/e$e.txt"
done
echo "done: results/e1.txt .. results/e10.txt"
